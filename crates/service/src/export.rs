//! Export surfaces over the flight recorder and the service metrics: a
//! [`TraceSnapshot`] with a JSON dump renderer, and a Prometheus-style
//! text exposition ([`render_prometheus`]) covering every
//! [`MetricsSnapshot`](crate::MetricsSnapshot) counter and gauge plus the
//! three latency [`LogHistogram`](crate::LogHistogram)s as cumulative
//! buckets — the future TCP frontend can serve `/metrics` verbatim.

use crate::histogram::HistogramSnapshot;
use crate::metrics::MetricsSnapshot;
use crate::trace::{
    commutative_checksum, stream_checksum, Exemplar, FlightRecorder, TraceEvent, TraceStats,
};

/// A point-in-time view of the flight recorder: the still-resident ring
/// events, the drop accounting, and both exemplar stores.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// Resident ring events ordered by timestamp (ties broken by trace id
    /// and per-trace sequence number).
    pub events: Vec<TraceEvent>,
    /// Events ever recorded across all rings.
    pub events_total: u64,
    /// Ring events overwritten before this snapshot (best-effort stream
    /// only — exemplar retention never loses error-class traces).
    pub dropped_events: u64,
    /// Full traces of every errored / shed / panicked / killed request
    /// still in the bounded store, oldest first.
    pub error_exemplars: Vec<Exemplar>,
    /// Error exemplars evicted (oldest first) after the store filled.
    pub error_exemplars_dropped: u64,
    /// The rolling slowest-k completed requests, slowest first.
    pub slowest: Vec<Exemplar>,
    /// Ordered checksum over the ring streams as captured (before the
    /// timestamp sort). Byte-deterministic only under single-worker
    /// replay; concurrent runs should gate on
    /// [`TraceSnapshot::error_checksum`] instead.
    pub stream_checksum: u64,
}

impl TraceSnapshot {
    pub(crate) fn capture(recorder: &FlightRecorder) -> Self {
        let (
            mut events,
            dropped_events,
            error_exemplars,
            error_exemplars_dropped,
            slowest,
            events_total,
        ) = recorder.collect();
        let stream = stream_checksum(events.iter());
        events.sort_by_key(|e| (e.ts, e.trace_id, e.seq));
        TraceSnapshot {
            events,
            events_total,
            dropped_events,
            error_exemplars,
            error_exemplars_dropped,
            slowest,
            stream_checksum: stream,
        }
    }

    /// Interleaving-independent checksum over the retained error
    /// exemplars (see [`commutative_checksum`]): byte-stable across runs
    /// of the same deterministic fault plan even with a concurrent worker
    /// pool — the chaos gate's number.
    #[must_use]
    pub fn error_checksum(&self) -> u64 {
        commutative_checksum(self.error_exemplars.iter())
    }

    /// Exemplars of `class`, for assertions and dashboards.
    #[must_use]
    pub fn exemplars_of(&self, class: crate::trace::ExemplarClass) -> Vec<&Exemplar> {
        self.error_exemplars
            .iter()
            .filter(|e| e.class == class)
            .collect()
    }

    /// The whole snapshot as a JSON document (hand-rolled, no
    /// dependencies; schema `moqo-trace/v1`).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(4096 + self.events.len() * 96);
        out.push_str("{\n  \"schema\": \"moqo-trace/v1\",\n");
        out.push_str(&format!("  \"events_total\": {},\n", self.events_total));
        out.push_str(&format!("  \"dropped_events\": {},\n", self.dropped_events));
        out.push_str(&format!(
            "  \"error_exemplars_dropped\": {},\n",
            self.error_exemplars_dropped
        ));
        out.push_str(&format!(
            "  \"stream_checksum\": {},\n",
            self.stream_checksum
        ));
        out.push_str(&format!(
            "  \"error_checksum\": {},\n",
            self.error_checksum()
        ));
        out.push_str("  \"recent\": [\n");
        push_events(&mut out, &self.events, "    ");
        out.push_str("  ],\n  \"error_exemplars\": [\n");
        push_exemplars(&mut out, &self.error_exemplars);
        out.push_str("  ],\n  \"slowest\": [\n");
        push_exemplars(&mut out, &self.slowest);
        out.push_str("  ]\n}\n");
        out
    }
}

fn push_events(out: &mut String, events: &[TraceEvent], indent: &str) {
    for (i, e) in events.iter().enumerate() {
        let comma = if i + 1 < events.len() { "," } else { "" };
        out.push_str(&format!(
            "{indent}{{\"trace\": {}, \"ts\": {}, \"seq\": {}, \"kind\": \"{}\", \
             \"args\": [{}, {}, {}]}}{comma}\n",
            e.trace_id,
            e.ts,
            e.seq,
            e.kind.name(),
            e.arg0,
            e.arg1,
            e.arg2,
        ));
    }
}

fn push_exemplars(out: &mut String, exemplars: &[Exemplar]) {
    for (i, ex) in exemplars.iter().enumerate() {
        let comma = if i + 1 < exemplars.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"trace\": {}, \"class\": \"{}\", \"latency_us\": {}, \
             \"truncated\": {}, \"events\": [\n",
            ex.trace_id,
            ex.class.name(),
            ex.latency_us,
            ex.truncated,
        ));
        push_events(out, &ex.events, "      ");
        out.push_str(&format!("    ]}}{comma}\n"));
    }
}

fn push_counter(out: &mut String, name: &str, help: &str, value: u64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
    ));
}

fn push_gauge(out: &mut String, name: &str, help: &str, value: f64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
    ));
}

#[allow(clippy::cast_precision_loss)]
fn push_histogram(out: &mut String, name: &str, help: &str, snapshot: &HistogramSnapshot) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    // Only the buckets where the cumulative count advances are emitted
    // (496 fixed buckets are mostly empty); `+Inf` always closes the
    // series, as the exposition format requires.
    let mut last = 0u64;
    for (hi_us, cumulative) in snapshot.cumulative_buckets() {
        if cumulative != last && hi_us != u64::MAX {
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                hi_us as f64 / 1e6
            ));
            last = cumulative;
        }
    }
    out.push_str(&format!(
        "{name}_bucket{{le=\"+Inf\"}} {}\n",
        snapshot.count()
    ));
    out.push_str(&format!("{name}_sum {}\n", snapshot.sum_us() as f64 / 1e6));
    out.push_str(&format!("{name}_count {}\n", snapshot.count()));
}

/// Renders the full metrics surface in the Prometheus text exposition
/// format: every [`MetricsSnapshot`] counter, the live gauges (pressure,
/// alive workers, queue depth, cache occupancy per shard), the three
/// latency histograms as cumulative buckets, the log-bucket quantiles,
/// and — when tracing is enabled — the flight-recorder totals.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn render_prometheus(
    metrics: &MetricsSnapshot,
    latency: &HistogramSnapshot,
    queue_wait: &HistogramSnapshot,
    service_time: &HistogramSnapshot,
    queued: usize,
    trace: Option<TraceStats>,
) -> String {
    let mut out = String::with_capacity(8192);
    push_gauge(
        &mut out,
        "moqo_uptime_seconds",
        "Time since the service started.",
        metrics.uptime.as_secs_f64(),
    );
    push_counter(
        &mut out,
        "moqo_submitted_total",
        "Requests accepted into the queue.",
        metrics.submitted,
    );
    push_counter(
        &mut out,
        "moqo_completed_total",
        "Requests answered with a plan.",
        metrics.completed,
    );
    push_counter(
        &mut out,
        "moqo_rejected_total",
        "Requests rejected by admission control.",
        metrics.rejected,
    );
    push_counter(
        &mut out,
        "moqo_timed_out_total",
        "Requests whose deadline expired mid-flight.",
        metrics.timed_out,
    );
    push_counter(
        &mut out,
        "moqo_failed_total",
        "Requests lost to internal errors.",
        metrics.failed,
    );
    push_counter(
        &mut out,
        "moqo_queue_full_total",
        "Submissions bounced off a full queue.",
        metrics.queue_full,
    );
    push_counter(
        &mut out,
        "moqo_shed_total",
        "Submissions shed by the brownout controller.",
        metrics.shed,
    );
    push_counter(
        &mut out,
        "moqo_panics_total",
        "Worker panics caught at the job boundary.",
        metrics.panics_total,
    );
    push_counter(
        &mut out,
        "moqo_respawns_total",
        "Workers respawned by the supervisor.",
        metrics.respawns,
    );
    push_counter(
        &mut out,
        "moqo_stalls_detected_total",
        "Wedged workers detected and replaced.",
        metrics.stalls_detected,
    );
    push_counter(
        &mut out,
        "moqo_degraded_blocks_total",
        "Blocks browned out under load pressure.",
        metrics.degraded_blocks,
    );
    push_counter(
        &mut out,
        "moqo_downgraded_blocks_total",
        "Blocks that ran a weaker algorithm than preferred.",
        metrics.downgraded_blocks,
    );
    push_gauge(
        &mut out,
        "moqo_throughput_rps",
        "Completed requests per second over the current window.",
        metrics.throughput_rps,
    );

    out.push_str(
        "# HELP moqo_blocks_total Blocks served, by algorithm family.\n\
         # TYPE moqo_blocks_total counter\n",
    );
    for (family, count) in [
        ("exa", metrics.blocks_exa),
        ("rta", metrics.blocks_rta),
        ("ira", metrics.blocks_ira),
        ("rmq", metrics.blocks_rmq),
        ("cached", metrics.blocks_cached),
    ] {
        out.push_str(&format!(
            "moqo_blocks_total{{algorithm=\"{family}\"}} {count}\n"
        ));
    }

    out.push_str(
        "# HELP moqo_request_latency_quantile_seconds Log-bucket latency quantiles \
         (lower bound of the bucket holding the order statistic).\n\
         # TYPE moqo_request_latency_quantile_seconds gauge\n",
    );
    for (q, value) in [
        ("0.5", metrics.p50),
        ("0.95", metrics.p95),
        ("0.99", metrics.p99),
    ] {
        out.push_str(&format!(
            "moqo_request_latency_quantile_seconds{{q=\"{q}\"}} {}\n",
            value.as_secs_f64()
        ));
    }

    push_counter(
        &mut out,
        "moqo_cache_hits_total",
        "Plan-cache direct serves.",
        metrics.cache.hits,
    );
    push_counter(
        &mut out,
        "moqo_cache_misses_total",
        "Plan-cache lookups not served directly.",
        metrics.cache.misses,
    );
    push_counter(
        &mut out,
        "moqo_cache_warm_starts_total",
        "Misses that seeded an RMQ warm start.",
        metrics.cache.warm_starts,
    );
    push_counter(
        &mut out,
        "moqo_cache_insertions_total",
        "Plan-cache entries written.",
        metrics.cache.insertions,
    );
    push_counter(
        &mut out,
        "moqo_cache_evictions_total",
        "Plan-cache LRU evictions.",
        metrics.cache.evictions,
    );
    push_gauge(
        &mut out,
        "moqo_cache_entries",
        "Plan-cache entries currently resident.",
        metrics.cache.entries as f64,
    );
    out.push_str(
        "# HELP moqo_cache_shard_entries Resident entries per cache shard.\n\
         # TYPE moqo_cache_shard_entries gauge\n",
    );
    for (shard, stats) in metrics.cache.per_shard.iter().enumerate() {
        out.push_str(&format!(
            "moqo_cache_shard_entries{{shard=\"{shard}\"}} {}\n",
            stats.entries
        ));
    }
    out.push_str(
        "# HELP moqo_cache_shard_evictions_total LRU evictions per cache shard.\n\
         # TYPE moqo_cache_shard_evictions_total counter\n",
    );
    for (shard, stats) in metrics.cache.per_shard.iter().enumerate() {
        out.push_str(&format!(
            "moqo_cache_shard_evictions_total{{shard=\"{shard}\"}} {}\n",
            stats.evictions
        ));
    }

    push_gauge(
        &mut out,
        "moqo_queue_depth",
        "Requests currently waiting in the queue.",
        queued as f64,
    );
    push_gauge(
        &mut out,
        "moqo_alive_workers",
        "Workers currently registered as live.",
        metrics.alive_workers as f64,
    );
    push_gauge(
        &mut out,
        "moqo_pressure_seconds",
        "EWMA of recent queue waits (the brownout signal); 0 before any sample.",
        metrics.pressure.map_or(0.0, |p| p.as_secs_f64()),
    );

    push_histogram(
        &mut out,
        "moqo_request_latency_seconds",
        "End-to-end latency, submission to response.",
        latency,
    );
    push_histogram(
        &mut out,
        "moqo_queue_wait_seconds",
        "Queue wait, submission to worker pickup.",
        queue_wait,
    );
    push_histogram(
        &mut out,
        "moqo_service_time_seconds",
        "Processing time, worker pickup to response.",
        service_time,
    );

    if let Some(stats) = trace {
        push_counter(
            &mut out,
            "moqo_trace_events_total",
            "Flight-recorder events ever recorded.",
            stats.events_total,
        );
        push_counter(
            &mut out,
            "moqo_trace_dropped_events_total",
            "Ring events overwritten before a snapshot saw them.",
            stats.dropped_events,
        );
        push_gauge(
            &mut out,
            "moqo_trace_error_exemplars",
            "Error-class exemplar traces currently retained.",
            stats.error_exemplars as f64,
        );
        push_counter(
            &mut out,
            "moqo_trace_error_exemplars_dropped_total",
            "Error exemplars evicted from the bounded store.",
            stats.error_exemplars_dropped,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheSnapshot;
    use crate::histogram::LogHistogram;
    use crate::metrics::ServiceMetrics;
    use crate::trace::{EventKind, ExemplarClass};
    use std::time::Duration;

    fn sample_metrics() -> MetricsSnapshot {
        let m = ServiceMetrics::default();
        m.on_submitted();
        m.on_completed(Duration::from_micros(50), Duration::from_millis(2));
        m.snapshot(CacheSnapshot::default(), 3)
    }

    #[test]
    fn prometheus_covers_every_metric_family() {
        let hist = LogHistogram::new();
        hist.record(Duration::from_millis(3));
        let snap = hist.snapshot();
        let text = render_prometheus(
            &sample_metrics(),
            &snap,
            &snap,
            &snap,
            7,
            Some(crate::trace::TraceStats {
                events_total: 11,
                dropped_events: 2,
                error_exemplars: 1,
                error_exemplars_dropped: 0,
            }),
        );
        for family in [
            "moqo_uptime_seconds",
            "moqo_submitted_total",
            "moqo_completed_total",
            "moqo_rejected_total",
            "moqo_timed_out_total",
            "moqo_failed_total",
            "moqo_queue_full_total",
            "moqo_shed_total",
            "moqo_panics_total",
            "moqo_respawns_total",
            "moqo_stalls_detected_total",
            "moqo_degraded_blocks_total",
            "moqo_downgraded_blocks_total",
            "moqo_throughput_rps",
            "moqo_blocks_total{algorithm=\"exa\"}",
            "moqo_blocks_total{algorithm=\"cached\"}",
            "moqo_request_latency_quantile_seconds{q=\"0.99\"}",
            "moqo_cache_hits_total",
            "moqo_cache_misses_total",
            "moqo_cache_warm_starts_total",
            "moqo_cache_insertions_total",
            "moqo_cache_evictions_total",
            "moqo_cache_entries",
            "moqo_queue_depth 7",
            "moqo_alive_workers 3",
            "moqo_pressure_seconds",
            "moqo_request_latency_seconds_bucket",
            "moqo_request_latency_seconds_sum",
            "moqo_request_latency_seconds_count 1",
            "moqo_queue_wait_seconds_count",
            "moqo_service_time_seconds_count",
            "moqo_trace_events_total 11",
            "moqo_trace_dropped_events_total 2",
            "moqo_trace_error_exemplars 1",
            "moqo_trace_error_exemplars_dropped_total 0",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_close_with_inf() {
        let hist = LogHistogram::new();
        for us in [5u64, 5, 100, 10_000] {
            hist.record_us(us);
        }
        let text = render_prometheus(
            &sample_metrics(),
            &hist.snapshot(),
            &LogHistogram::new().snapshot(),
            &LogHistogram::new().snapshot(),
            0,
            None,
        );
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("moqo_request_latency_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.len() >= 4, "expected distinct buckets: {text}");
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "not cumulative");
        assert_eq!(*counts.last().unwrap(), 4, "+Inf bucket holds the count");
        assert!(text.contains("moqo_request_latency_seconds_bucket{le=\"+Inf\"} 4"));
        // Exact sum: 5 + 5 + 100 + 10000 µs.
        assert!(text.contains("moqo_request_latency_seconds_sum 0.01011"));
    }

    #[test]
    fn json_dump_is_structured() {
        let ex = Exemplar {
            trace_id: 9,
            class: ExemplarClass::Panicked,
            latency_us: 42,
            events: vec![TraceEvent {
                trace_id: 9,
                ts: 1,
                kind: EventKind::Submitted,
                seq: 0,
                arg0: 1,
                arg1: 0,
                arg2: 0,
            }],
            truncated: false,
        };
        let snap = TraceSnapshot {
            events: ex.events.clone(),
            events_total: 1,
            dropped_events: 0,
            error_exemplars: vec![ex],
            error_exemplars_dropped: 0,
            slowest: Vec::new(),
            stream_checksum: 123,
        };
        let json = snap.render_json();
        assert!(json.contains("\"schema\": \"moqo-trace/v1\""));
        assert!(json.contains("\"kind\": \"submitted\""));
        assert!(json.contains("\"class\": \"panicked\""));
        assert!(json.contains("\"stream_checksum\": 123"));
        assert!(json.contains(&format!("\"error_checksum\": {}", snap.error_checksum())));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }
}
