//! # moqo_service — a concurrent optimization service with an α-aware plan cache
//!
//! The paper trades precision for optimization speed through the
//! approximation factor α; its anytime follow-up (arXiv:1603.00400) frames
//! optimization under per-request time budgets. This crate turns those two
//! ideas into a serving layer a frontend can hammer:
//!
//! * **Requests** ([`OptimizationRequest`]) pair a query with a
//!   [`Preference`](moqo_cost::Preference), a tolerated approximation
//!   factor `α′`, an optional wall-clock deadline, and an optional
//!   algorithm hint.
//! * **Scheduling**: submissions land in a bounded, sharded, *lock-free*
//!   MPMC queue (back-pressure surfaces as [`ServiceError::QueueFull`],
//!   never silent buffering) and are executed by a pool of `std::thread`
//!   workers popping work-stealing style (own shard first). A pluggable
//!   [`AlgorithmPolicy`] performs deadline-aware admission per block:
//!   prefer the strongest scheme the request asks for, downgrade along
//!   `EXA → IRA/RTA → RMQ` when block size or remaining budget rules it
//!   out, reject when even the anytime search cannot start. Hopeless
//!   deadlines are rejected at *submission* (before occupying a queue
//!   slot), and the deadline split across blocks is weighted by a
//!   lock-free EWMA of measured per-block-size wall times
//!   ([`LearnedBlockTimes`]) once samples exist.
//! * **The α-aware plan cache** ([`PlanCache`]): blocks are keyed by
//!   canonical signatures ([`moqo_catalog::JoinGraph::signature`] ×
//!   [`moqo_cost::Preference::signature`]). A front computed at factor α
//!   serves every later request tolerating `α′ ≥ α` directly (with the
//!   Figure-8 restriction for bounded requests — see [`AlphaCertificate`]),
//!   and warm-starts the randomized search otherwise. Entries own their
//!   plans in compact arenas (re-rooted via `PlanArena::adopt`), eviction
//!   is sharded LRU, and per-entry hit/warm-start statistics are kept.
//! * **Metrics** ([`ServiceMetrics`]): windowed throughput, p50/p95/p99
//!   for end-to-end latency, queue wait and processing time (lock-free
//!   log-bucket histograms, O(buckets) memory — see [`LogHistogram`] for
//!   the ≤12.5% quantile error bound), a per-[`ServiceError`]-variant
//!   error taxonomy, downgrade counts, per-algorithm block mix, and cache
//!   counters, all snapshotted on demand at O(buckets) cost. Nothing on
//!   the submit or completion path acquires a `Mutex`.
//!
//! * **Self-healing** — a panic inside a job is caught at the worker's
//!   guard and delivered as [`ServiceError::Internal`] (payload included)
//!   while the worker keeps serving; a worker that dies anyway (or wedges
//!   past [`ServiceConfig::stall_after`]) is detected by the supervisor
//!   thread via per-worker heartbeat epochs and respawned onto its queue
//!   shard ([`MetricsSnapshot::respawns`], `stalls_detected`).
//! * **Brownout load shedding** ([`BrownoutConfig`]) — an EWMA
//!   [`PressureGauge`] over measured queue waits drives graceful
//!   degradation: above the watermark, blocks run the anytime search at a
//!   pressure-scaled sample budget (stamped `degraded_by_pressure` in the
//!   block report, so α-accounting stays honest); past the shed threshold,
//!   submissions are turned away with [`ServiceError::Shed`] before taking
//!   a queue slot. Both transient errors are retryable through
//!   [`OptimizationService::submit_with_retry`] (decorrelated-jitter
//!   backoff, [`RetryPolicy`]).
//! * **Deterministic chaos** ([`FaultPlan`]) — panics, delays, queue-full
//!   rejections and worker kills keyed on exact submission ordinals (or
//!   the `MOQO_SL_FAULTS` env grammar), so fault runs replay byte-stable
//!   and CI can gate the robustness counters.
//! * **End-to-end tracing** ([`ServiceBuilder::tracing`]) — a lock-free
//!   flight recorder ([`TraceConfig`]): per-worker bounded seqlock rings
//!   of fixed-size span events covering the whole request lifecycle
//!   (submit/admission, enqueue, queue wait, cache probes, per-block
//!   optimize with algorithm + achieved α + report digest, faults, panics,
//!   kills, completion), tail-based exemplar retention (every error-class
//!   trace plus the rolling slowest-k), a JSON [`TraceSnapshot`] dump and
//!   a Prometheus-style text exposition ([`render_prometheus`]) over the
//!   entire metrics surface. Under a logical clock the event stream is
//!   byte-deterministic and checksum-gateable in CI.
//!
//! Everything is std-only — no async runtime — and deterministic under a
//! test configuration (one worker, fixed RMQ seed, no deadlines).
//!
//! ## Example
//!
//! ```
//! use moqo_service::{OptimizationRequest, OptimizationService};
//! use moqo_cost::{Objective, ObjectiveSet, Preference};
//!
//! let catalog = moqo_catalog::tpch::catalog(0.01);
//! let service = OptimizationService::builder(catalog.clone()).workers(2).build();
//!
//! let query = {
//!     // Any query built against the service's catalog works; here a tiny
//!     // two-relation block.
//!     use moqo_catalog::{JoinGraphBuilder, Query};
//!     let block = JoinGraphBuilder::new(&catalog)
//!         .rel("orders", 1.0)
//!         .rel("lineitem", 0.5)
//!         .join(("orders", "o_orderkey"), ("lineitem", "l_orderkey"))
//!         .build();
//!     Query::single_block("example", block)
//! };
//! let preference = Preference::over(ObjectiveSet::empty())
//!     .weight(Objective::TotalTime, 1.0)
//!     .bound(Objective::TupleLoss, 0.0);
//!
//! let request = OptimizationRequest::new(query, preference, 1.0);
//! let response = service.submit_wait(request.clone()).unwrap();
//! assert!(response.respects_bounds);
//!
//! // The same request again is a cache hit.
//! let again = service.submit_wait(request).unwrap();
//! assert!(again.fully_cached());
//! ```

#![warn(missing_docs)]

mod cache;
mod export;
mod fault;
mod histogram;
mod metrics;
mod policy;
mod queue;
mod request;
mod retry;
mod service;
mod supervisor;
mod trace;

pub use cache::{CacheKey, CacheLookup, CacheSnapshot, EntryStats, PlanCache, ShardCacheSnapshot};
pub use export::{render_prometheus, TraceSnapshot};
pub use fault::{FaultAction, FaultPlan, FaultPlanBuilder};
pub use histogram::{HistogramSnapshot, LogHistogram, BUCKETS as HISTOGRAM_BUCKETS};
pub use metrics::{AlgorithmKind, MetricsSnapshot, PressureGauge, ServiceMetrics};
pub use policy::{
    Admission, AlgorithmPolicy, BrownoutConfig, BrownoutLevel, DeadlineAwarePolicy,
    LearnedBlockTimes, PolicyContext,
};
pub use queue::{BoundedQueue, PushError};
pub use request::{
    AlphaCertificate, BlockOutcome, BlockSource, OptimizationRequest, OptimizationResponse,
    ServiceError,
};
pub use retry::{is_retryable, retry_with, RetryClock, RetryPolicy, SystemClock};
pub use service::{OptimizationService, ServiceBuilder, ServiceConfig, Ticket};
pub use trace::{
    commutative_checksum, error_code, stream_checksum, EventKind, Exemplar, ExemplarClass,
    TraceConfig, TraceEvent, TraceStats,
};

/// Model-suite surface: internals the `tests/model_*.rs` suites drive
/// directly, plus the seeded-bug injection knobs. Compiled only under
/// `--cfg moqo_model`, so the normal public API is unchanged.
#[cfg(moqo_model)]
pub mod model_internals {
    pub use crate::queue::model_hooks as queue_hooks;
    pub use crate::trace::model_hooks as trace_hooks;
    pub use crate::trace::EventRing;
}
