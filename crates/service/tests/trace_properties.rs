//! Flight-recorder guarantees under hostile conditions:
//!
//! * **Tail-based retention beats ring overwrite** (property test): with a
//!   ring small enough that the event stream is continuously overwritten,
//!   every error-class request of a random fault plan still survives as a
//!   *complete* exemplar trace — drop accounting applies to the
//!   best-effort stream only, never to errors.
//! * **Exactly-once, ordered spans under concurrency** (stress test): with
//!   a full worker pool and many submitter threads, every trace id owns a
//!   contiguous, duplicate-free span `seq 0..n` that opens with
//!   `submitted` and closes with exactly one terminal event.

use std::collections::HashMap;
use std::time::Duration;

use moqo_catalog::Catalog;
use moqo_cost::{Objective, ObjectiveSet, Preference};
use moqo_service::{
    EventKind, ExemplarClass, FaultPlan, OptimizationRequest, OptimizationService, ServiceError,
    TraceConfig,
};
use proptest::prelude::*;

fn weighted_pref() -> Preference {
    Preference::over(ObjectiveSet::empty())
        .weight(Objective::TotalTime, 1.0)
        .weight(Objective::BufferFootprint, 1e-6)
}

fn small_request(catalog: &Catalog) -> OptimizationRequest {
    OptimizationRequest::new(moqo_tpch::query(catalog, 3), weighted_pref(), 2.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random panic sets over 24 sequential requests, recorded into a
    /// 16-slot ring (~5 events per request, so the stream overwrites
    /// itself several times over): every panicked ordinal must still be
    /// retained as a full exemplar — `submitted` through `failed`, with a
    /// contiguous sequence — even while `dropped_events` grows.
    #[test]
    fn error_exemplars_survive_ring_overwrite(panic_mask in 1u32..(1 << 24)) {
        const REQUESTS: u64 = 24;
        let panicked: Vec<u64> =
            (0..REQUESTS).filter(|i| panic_mask & (1 << i) != 0).collect();
        let mut plan = FaultPlan::builder();
        for &ordinal in &panicked {
            plan = plan.panic_at(ordinal);
        }
        let catalog = moqo_catalog::tpch::catalog(0.01);
        let service = OptimizationService::builder(catalog.clone())
            .workers(1)
            .faults(plan.build())
            .tracing(TraceConfig {
                ring_capacity: 16,
                logical_clock: true,
                ..TraceConfig::default()
            })
            .build();
        for i in 0..REQUESTS {
            let result = service.submit_wait(small_request(&catalog));
            let should_panic = panicked.contains(&i);
            prop_assert_eq!(
                matches!(result, Err(ServiceError::Internal { .. })),
                should_panic,
                "ordinal {} (should_panic={})", i, should_panic
            );
        }
        let trace = service.trace_snapshot().expect("tracing enabled");
        // The stream genuinely overwrote itself (24 requests × ≥4 events
        // into 16 slots) — retention must not depend on ring residency.
        prop_assert!(trace.dropped_events > 0, "ring was never overwritten");
        prop_assert_eq!(trace.error_exemplars_dropped, 0);
        let exemplars = trace.exemplars_of(ExemplarClass::Panicked);
        prop_assert_eq!(exemplars.len(), panicked.len());
        for &ordinal in &panicked {
            let exemplar = exemplars
                .iter()
                .find(|e| e.trace_id == ordinal)
                .expect("every panicked ordinal is retained");
            prop_assert!(!exemplar.truncated);
            for (index, event) in exemplar.events.iter().enumerate() {
                prop_assert_eq!(usize::from(event.seq), index, "span has a gap");
            }
            let kinds: Vec<EventKind> = exemplar.events.iter().map(|e| e.kind).collect();
            prop_assert_eq!(kinds.first(), Some(&EventKind::Submitted));
            prop_assert!(kinds.contains(&EventKind::PanicCaught));
            prop_assert_eq!(kinds.last(), Some(&EventKind::Failed));
        }
    }
}

/// Eight submitter threads race 32 requests each into a 4-worker pool.
/// The ring is big enough that nothing drops, so the snapshot must show
/// **exactly one** event per `(trace id, seq)` pair, a contiguous
/// `0..n` span per trace, `submitted` first, and exactly one terminal
/// `completed`/`failed` per trace — concurrent writers never tear,
/// duplicate, or interleave spans.
#[test]
fn concurrent_writers_keep_spans_exactly_once_and_ordered() {
    const SUBMITTERS: usize = 8;
    const PER_THREAD: usize = 32;
    let catalog = moqo_catalog::tpch::catalog(0.01);
    let service = OptimizationService::builder(catalog.clone())
        .workers(4)
        .queue_capacity(SUBMITTERS * PER_THREAD + 8)
        .tracing(TraceConfig {
            ring_capacity: 16 * 1024,
            ..TraceConfig::default()
        })
        .build();
    std::thread::scope(|scope| {
        for _ in 0..SUBMITTERS {
            scope.spawn(|| {
                for _ in 0..PER_THREAD {
                    let response = service
                        .submit(small_request(&catalog))
                        .expect("queue sized for the full load")
                        .wait();
                    assert!(response.is_ok(), "{response:?}");
                }
            });
        }
    });
    std::thread::sleep(Duration::from_millis(20));
    let trace = service.trace_snapshot().expect("tracing enabled");
    assert_eq!(trace.dropped_events, 0, "ring was sized for the full load");

    let mut spans: HashMap<u64, Vec<(u16, EventKind)>> = HashMap::new();
    for event in &trace.events {
        spans
            .entry(event.trace_id)
            .or_default()
            .push((event.seq, event.kind));
    }
    // System events (respawns/stalls) carry the reserved id; none are
    // expected in a fault-free run, but a slow machine could stall-detect.
    spans.remove(&u64::MAX);
    assert_eq!(spans.len(), SUBMITTERS * PER_THREAD, "one span per request");
    for (trace_id, span) in &mut spans {
        span.sort_by_key(|(seq, _)| *seq);
        for (index, (seq, _)) in span.iter().enumerate() {
            assert_eq!(
                usize::from(*seq),
                index,
                "trace {trace_id} has a duplicated or missing seq: {span:?}"
            );
        }
        let kinds: Vec<EventKind> = span.iter().map(|(_, kind)| *kind).collect();
        assert_eq!(
            kinds[0],
            EventKind::Submitted,
            "trace {trace_id}: {kinds:?}"
        );
        let terminals = kinds
            .iter()
            .filter(|k| matches!(k, EventKind::Completed | EventKind::Failed))
            .count();
        assert_eq!(terminals, 1, "trace {trace_id}: {kinds:?}");
        assert_eq!(
            kinds.iter().filter(|k| **k == EventKind::Popped).count(),
            1,
            "trace {trace_id} popped exactly once: {kinds:?}"
        );
    }
}
