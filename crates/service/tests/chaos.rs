//! Chaos acceptance tests: deterministic fault injection against the
//! self-healing service spine. The headline trace panics 25% of 512
//! requests and kills 2 of 4 workers mid-stream; every request must still
//! be answered exactly once (success or `Internal` — never a hung
//! `wait()`), the supervisor must restore the pool to 4, and the
//! robustness counters must replay byte-stable.

use std::time::{Duration, Instant};

use moqo_catalog::Catalog;
use moqo_cost::{Objective, ObjectiveSet, Preference};
use moqo_service::{
    BrownoutConfig, ExemplarClass, FaultPlan, OptimizationRequest, OptimizationService,
    RetryPolicy, ServiceError, TraceConfig,
};

fn weighted_pref() -> Preference {
    Preference::over(ObjectiveSet::empty())
        .weight(Objective::TotalTime, 1.0)
        .weight(Objective::BufferFootprint, 1e-6)
}

fn small_request(catalog: &Catalog) -> OptimizationRequest {
    OptimizationRequest::new(moqo_tpch::query(catalog, 3), weighted_pref(), 2.0)
}

/// Polls `probe` until it returns true or `deadline` elapses.
fn eventually(deadline: Duration, mut probe: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    probe()
}

/// The counters — and trace reconstruction — one chaos run must reproduce
/// exactly.
#[derive(Debug, PartialEq, Eq)]
struct ChaosOutcome {
    ok: u64,
    internal: u64,
    other: u64,
    submitted: u64,
    completed: u64,
    failed: u64,
    panics_total: u64,
    shed: u64,
    respawns: u64,
    /// Every injected panic must survive as a full-trace exemplar.
    panic_exemplars: usize,
    /// Both worker kills must be reconstructed (their requests complete
    /// `Ok`; the `worker_killed` event classifies the trace).
    kill_exemplars: usize,
    /// Interleaving-independent checksum over all retained error
    /// exemplars; byte-stable across runs of the same fault plan.
    error_checksum: u64,
}

fn run_chaos_trace(catalog: &Catalog) -> ChaosOutcome {
    const REQUESTS: u64 = 512;
    const WORKERS: usize = 4;
    // Panic on every 4th ordinal starting at 1; kill the serving worker
    // after ordinals 101 and 301 (both ≡ 1 mod 4 — the exact kill
    // overrides the periodic panic, so the panic count is 128 - 2 = 126).
    // Ordinal 0 is a fault-free warm-up that is waited on before the
    // storm: every later identical request probes a warm cache, so each
    // exemplar's event list is independent of worker interleaving and the
    // error checksum replays byte-stable.
    let plan = FaultPlan::builder()
        .panic_every(4, 1)
        .kill_worker_at(101)
        .kill_worker_at(301)
        .build();
    let service = OptimizationService::builder(catalog.clone())
        .workers(WORKERS)
        .queue_capacity(REQUESTS as usize + WORKERS)
        .supervisor_tick(Duration::from_millis(1))
        .faults(plan)
        .tracing(TraceConfig {
            logical_clock: true,
            ..TraceConfig::default()
        })
        .build();

    service
        .submit_wait(small_request(catalog))
        .expect("warm-up request succeeds");
    let mut tickets = Vec::with_capacity(REQUESTS as usize);
    for _ in 0..REQUESTS {
        tickets.push(
            service
                .submit(small_request(catalog))
                .expect("no deadline, spare capacity, brownout off: every submission is accepted"),
        );
    }
    // Every ticket resolves: panics come back as `Internal`, worker deaths
    // never strand a request (the supervisor refills the pool and the
    // MPMC queue lets survivors steal the dead worker's backlog).
    let (mut ok, mut internal, mut other) = (0u64, 0u64, 0u64);
    for ticket in tickets {
        match ticket.wait() {
            Ok(_) => ok += 1,
            Err(ServiceError::Internal { payload, .. }) => {
                assert!(
                    payload.contains("injected fault"),
                    "unexpected panic payload: {payload}"
                );
                internal += 1;
            }
            Err(error) => {
                other += 1;
                eprintln!("unexpected error: {error}");
            }
        }
    }

    // The supervisor restores the pool to its configured size.
    assert!(
        eventually(Duration::from_secs(10), || service.alive_workers()
            == WORKERS
            && service.metrics().respawns == 2),
        "supervisor never restored the pool: alive={}, respawns={}",
        service.alive_workers(),
        service.metrics().respawns
    );

    let trace = service
        .trace_snapshot()
        .expect("tracing was enabled for the chaos run");
    assert_eq!(
        trace.error_exemplars_dropped, 0,
        "the exemplar store must hold every error-class trace of this run"
    );
    // Exemplars carry the full lifecycle: a panicked request must show its
    // submit-side and worker-side events plus the caught panic.
    for exemplar in trace.exemplars_of(ExemplarClass::Panicked) {
        let kinds: Vec<&str> = exemplar.events.iter().map(|e| e.kind.name()).collect();
        for expected in ["submitted", "enqueued", "popped", "panic_caught", "failed"] {
            assert!(
                kinds.contains(&expected),
                "panic exemplar {} missing {expected}: {kinds:?}",
                exemplar.trace_id
            );
        }
    }

    let metrics = service.shutdown();
    ChaosOutcome {
        ok,
        internal,
        other,
        submitted: metrics.submitted,
        completed: metrics.completed,
        failed: metrics.failed,
        panics_total: metrics.panics_total,
        shed: metrics.shed,
        respawns: metrics.respawns,
        panic_exemplars: trace.exemplars_of(ExemplarClass::Panicked).len(),
        kill_exemplars: trace.exemplars_of(ExemplarClass::WorkerKilled).len(),
        error_checksum: trace.error_checksum(),
    }
}

#[test]
fn chaos_trace_answers_every_request_and_heals_the_pool() {
    let catalog = moqo_catalog::tpch::catalog(0.01);
    let outcome = run_chaos_trace(&catalog);
    // 128 ordinals ≡ 1 mod 4, minus the two exact kills that override the
    // periodic panic rule; the checksum itself is pinned by the
    // replay-stability test, not an absolute value here.
    let expected = ChaosOutcome {
        ok: 512 - 126,
        internal: 126,
        other: 0,
        submitted: 513,
        completed: 513 - 126,
        failed: 126,
        panics_total: 126,
        shed: 0,
        respawns: 2,
        panic_exemplars: 126,
        kill_exemplars: 2,
        error_checksum: outcome.error_checksum,
    };
    assert_eq!(outcome, expected);
}

#[test]
fn chaos_counters_replay_stable_across_runs() {
    let catalog = moqo_catalog::tpch::catalog(0.01);
    let first = run_chaos_trace(&catalog);
    for run in 1..5 {
        let again = run_chaos_trace(&catalog);
        assert_eq!(again, first, "chaos run {run} diverged");
    }
}

#[test]
fn panic_isolation_keeps_a_single_worker_serving() {
    let catalog = moqo_catalog::tpch::catalog(0.01);
    let plan = FaultPlan::builder().panic_at(0).build();
    let service = OptimizationService::builder(catalog.clone())
        .workers(1)
        .faults(plan)
        .build();
    let poisoned = service.submit_wait(small_request(&catalog));
    match poisoned {
        Err(ServiceError::Internal { payload, .. }) => {
            assert!(payload.contains("panic at ordinal 0"), "{payload}");
        }
        other => panic!("expected Internal, got {other:?}"),
    }
    // The same worker thread survived the panic and serves the next one.
    let healthy = service.submit_wait(small_request(&catalog));
    assert!(healthy.is_ok(), "{healthy:?}");
    assert_eq!(service.alive_workers(), 1);
    let metrics = service.shutdown();
    assert_eq!(metrics.panics_total, 1);
    assert_eq!(metrics.failed, 1);
    assert_eq!(metrics.respawns, 0, "no thread died; nothing to respawn");
}

#[test]
fn drop_with_dead_pool_answers_the_backlog_instead_of_hanging() {
    let catalog = moqo_catalog::tpch::catalog(0.01);
    // One worker, killed by its first job; a glacial supervisor tick so no
    // replacement arrives before the drop — the queued backlog must be
    // answered by the shutdown drain, not abandoned to hung `wait()`s.
    let plan = FaultPlan::builder().kill_worker_at(0).build();
    let service = OptimizationService::builder(catalog.clone())
        .workers(1)
        .supervisor_tick(Duration::from_secs(30))
        .faults(plan)
        .build();
    let first = service.submit(small_request(&catalog)).unwrap();
    // The kill answers its own request first, then takes the thread down.
    assert!(first.wait().is_ok());
    assert!(eventually(Duration::from_secs(5), || service
        .alive_workers()
        == 0));
    let stranded: Vec<_> = (0..3)
        .map(|_| service.submit(small_request(&catalog)).unwrap())
        .collect();
    drop(service);
    for ticket in stranded {
        assert!(matches!(ticket.wait(), Err(ServiceError::ShuttingDown)));
    }
}

#[test]
fn brownout_sheds_and_degrades_under_pressure() {
    let catalog = moqo_catalog::tpch::catalog(0.01);
    // Every job sleeps 10 ms before processing; the sleep counts as queue
    // wait, so completed requests push the pressure EWMA far beyond the
    // 1 µs watermark. With a single worker the backlog guard is easy to
    // satisfy deterministically.
    let plan = FaultPlan::parse("delay:10ms@*/1").unwrap();
    let service = OptimizationService::builder(catalog.clone())
        .workers(1)
        .brownout(BrownoutConfig {
            watermark: Some(Duration::from_micros(1)),
            ..BrownoutConfig::default()
        })
        .faults(plan)
        .tracing(TraceConfig::default())
        .build();
    // Distinct queries so the backlog stays cache-miss work (cache hits
    // never degrade — serving a certified front is already cheap).
    let pool = [3u8, 6, 12, 14, 4, 3, 6, 12];
    let tickets: Vec<_> = pool
        .iter()
        .map(|q| {
            let request =
                OptimizationRequest::new(moqo_tpch::query(&catalog, *q), weighted_pref(), 2.0);
            service.submit(request).unwrap()
        })
        .collect();
    // Wait until pressure is measured (a completion) while a real backlog
    // still exists, then submit: the valve must shed.
    assert!(
        eventually(Duration::from_secs(10), || service.metrics().completed >= 1
            && service.queued() >= 1),
        "never reached the pressured-with-backlog state"
    );
    match service.submit(small_request(&catalog)) {
        Err(ServiceError::Shed) => {}
        Err(other) => panic!("expected Shed, got {other:?}"),
        Ok(_) => panic!("expected Shed, got an accepted submission"),
    }

    let mut degraded_blocks_seen = 0;
    for ticket in tickets {
        if let Ok(response) = ticket.wait() {
            for block in &response.blocks {
                if block.report.degraded_by_pressure {
                    degraded_blocks_seen += 1;
                    assert!(
                        block.achieved_alpha.is_infinite(),
                        "a browned-out block must not claim a guarantee"
                    );
                }
            }
        }
    }
    // Shed is retryable, and with the backlog drained the valve reopens
    // (the queue-length guard keeps a stale EWMA from shedding forever):
    // a retrying submit goes straight through.
    assert!(moqo_service::is_retryable(&ServiceError::Shed));
    let retried = service
        .submit_with_retry(&small_request(&catalog), &RetryPolicy::default())
        .and_then(moqo_service::Ticket::wait);
    assert!(retried.is_ok(), "{retried:?}");

    // The shed submission never took a queue slot, yet its trace survives
    // as a full exemplar (tail-based retention keeps every error class).
    let trace = service.trace_snapshot().expect("tracing enabled");
    let shed_exemplars = trace.exemplars_of(ExemplarClass::Shed);
    assert!(
        !shed_exemplars.is_empty(),
        "a shed request must be retained as an exemplar"
    );
    assert!(
        shed_exemplars[0]
            .events
            .iter()
            .any(|e| e.kind.name() == "shed"),
        "the shed exemplar carries the shed event"
    );

    let metrics = service.shutdown();
    assert!(metrics.shed >= 1, "{:?}", metrics.shed);
    assert!(
        metrics.degraded_blocks >= 1 && degraded_blocks_seen >= 1,
        "pressured cache-miss blocks should degrade: counter={}, seen={degraded_blocks_seen}",
        metrics.degraded_blocks
    );
}
