//! Model-checked invariants of the lock-free metrics spine: the
//! log-bucket histogram, the pressure-gauge EWMA CAS loop, and the
//! learned block-time estimator (run with `RUSTFLAGS="--cfg moqo_model"
//! cargo test -p moqo_service --test model_metrics --release`).
#![cfg(moqo_model)]

use std::time::Duration;

use moqo_service::{LearnedBlockTimes, LogHistogram, PressureGauge};
use moqo_sync::model::{self, Config};
use moqo_sync::thread;
use moqo_sync::Arc;

/// Concurrent `record_us` never loses a sample: count, exact sum and the
/// bucket totals all conserve under every interleaving of two recorders —
/// the histogram's wait-free `fetch_add`s need nothing stronger than
/// Relaxed.
#[test]
fn histogram_conserves_concurrent_samples() {
    let report = model::check("histogram_conserves_samples", &Config::smoke(), || {
        let h = Arc::new(LogHistogram::new());
        let other = {
            let h = Arc::clone(&h);
            thread::spawn(move || {
                h.record_us(5);
                h.record_us(1_000);
            })
        };
        h.record_us(70);
        other.join().expect("recorder");
        let snap = h.snapshot();
        assert_eq!(snap.count(), 3, "no sample may be lost");
        assert_eq!(snap.sum_us(), 1_075, "the exact sum series conserves");
        let (_, cumulative_total) = snap.cumulative_buckets().last().expect("buckets");
        assert_eq!(cumulative_total, 3, "bucket totals agree with count");
    });
    assert!(report.coverage_ok(10_000), "coverage too low: {report:?}");
}

/// The pressure gauge's CAS loop folds both racing samples in one of the
/// two serialization orders — the final EWMA is always from the
/// enumerable set, never a corrupted mix (the monotonic-CAS invariant:
/// a lost race retries against the winner's value, it never overwrites
/// it).
#[test]
fn pressure_gauge_cas_serializes_racing_samples() {
    let report = model::check("pressure_gauge_cas", &Config::smoke(), || {
        let gauge = Arc::new(PressureGauge::default());
        let other = {
            let gauge = Arc::clone(&gauge);
            thread::spawn(move || gauge.record(Duration::from_millis(20)))
        };
        gauge.record(Duration::from_millis(10));
        other.join().expect("recorder");
        let final_us = gauge.current().expect("two samples recorded").as_secs_f64() * 1e6;
        // 10ms then 20ms: 0.2·20 + 0.8·10 = 12ms; the other order: 18ms.
        let acceptable = [12_000.0, 18_000.0];
        assert!(
            acceptable.iter().any(|v| (final_us - v).abs() < 1e-6),
            "EWMA {final_us}µs is not a valid serialization of the two samples"
        );
    });
    assert!(report.coverage_ok(10_000), "coverage too low: {report:?}");
}

/// Same CAS-serialization invariant for the deadline policy's learned
/// per-block-size wall-time EWMA ([`LearnedBlockTimes`]).
#[test]
fn learned_block_times_cas_serializes_racing_samples() {
    let report = model::check("learned_block_times_cas", &Config::smoke(), || {
        let times = Arc::new(LearnedBlockTimes::new(0.2));
        let other = {
            let times = Arc::clone(&times);
            thread::spawn(move || times.record(3, Duration::from_millis(20)))
        };
        times.record(3, Duration::from_millis(10));
        other.join().expect("recorder");
        let final_us = times
            .estimate(3)
            .expect("two samples recorded")
            .as_secs_f64()
            * 1e6;
        let acceptable = [12_000.0, 18_000.0];
        assert!(
            acceptable.iter().any(|v| (final_us - v).abs() < 1e-6),
            "estimate {final_us}µs is not a valid serialization of the two samples"
        );
        assert_eq!(times.estimate(4), None, "untouched sizes stay empty");
    });
    assert!(report.coverage_ok(10_000), "coverage too low: {report:?}");
}
