//! Property tests for the serving layer's correctness core:
//!
//! * a front cached at factor α serves every request tolerating `α′ ≥ α`
//!   with a valid certificate, and the served front genuinely `α′`-covers
//!   the exact Pareto frontier (Theorem 3 carried across requests);
//! * canonical signatures are invariant under relation/edge permutation,
//!   edge flips, and weight rescaling.

use moqo_catalog::{BaseRel, JoinEdge, JoinGraph};
use moqo_core::{exa, rta, Deadline, PlanEntry, PruneMode};
use moqo_cost::{pareto_front, CostVector, Objective, ObjectiveSet, Preference};
use moqo_costmodel::{CostModel, CostModelParams};
use moqo_service::{CacheKey, CacheLookup, PlanCache};
use proptest::prelude::*;

/// Random blocks are 2–4 relations of a chain/star/cycle/clique over the
/// TPC-H catalog, so every generated graph admits real join predicates;
/// the strategies yield the size offset and the topology index.
fn arb_n_off() -> impl Strategy<Value = usize> {
    0usize..3
}

fn arb_topo() -> impl Strategy<Value = usize> {
    0usize..4
}

fn arb_alpha() -> impl Strategy<Value = f64> {
    (0u32..=20).prop_map(|i| 1.0 + f64::from(i) * 0.1)
}

fn arb_extra() -> impl Strategy<Value = f64> {
    (0u32..=20).prop_map(|i| f64::from(i) * 0.1)
}

fn costs(entries: &[PlanEntry]) -> Vec<CostVector> {
    entries.iter().map(|e| e.cost).collect()
}

fn preference() -> Preference {
    Preference::over(ObjectiveSet::empty())
        .weight(Objective::TotalTime, 1.0)
        .weight(Objective::BufferFootprint, 1e-6)
}

proptest! {
    /// The α-serving rule end to end: compute a front at α with RTA, cache
    /// it, and probe with α′ = α + extra. The probe must be a direct hit
    /// whose front α′-covers the exact frontier of the same block.
    #[test]
    fn cached_alpha_front_serves_looser_requests_with_coverage(
        n_off in arb_n_off(),
        topo in arb_topo(),
        alpha in arb_alpha(),
        extra in arb_extra(),
    ) {
        let catalog = moqo_tpch::catalog(0.01);
        let graph = moqo_tpch::large_join_graph_with(
            &catalog,
            2 + n_off,
            moqo_tpch::Topology::ALL[topo],
        );
        let params = CostModelParams::default();
        let model = CostModel::new(&params, &catalog, &graph);
        let pref = preference();

        let approx = rta(&model, &pref, alpha, &Deadline::unlimited());
        let cache = PlanCache::new(4, 1);
        let key = CacheKey {
            graph: graph.signature(),
            preference: pref.signature(),
        };
        let mode = PruneMode::auto(params.enable_sampling, pref.objectives);
        cache.insert(key, &graph, &approx.final_plans, &approx.arena, alpha, mode, pref.objectives);

        let requested = alpha + extra;
        match cache.lookup(&key, &graph, requested, false, mode) {
            CacheLookup::Hit { frontier, alpha: cached, arena } => {
                prop_assert!(cached <= requested);
                // The adopted front must reproduce the cached cost vectors
                // and re-root every tree into the fresh arena.
                prop_assert_eq!(costs(&frontier), costs(&approx.final_plans));
                for e in &frontier {
                    prop_assert!((e.plan.0 as usize) < arena.len());
                }
                // Genuine α′-coverage of the exact frontier.
                let exact = exa(&model, &pref, &Deadline::unlimited());
                prop_assert!(pareto_front::is_approx_pareto_set(
                    &costs(&frontier),
                    &costs(&exact.final_plans),
                    requested,
                    pref.objectives,
                ));
            }
            _ => prop_assert!(false, "α′ ≥ α must serve directly"),
        }
    }

    /// The converse rule: a strictly tighter request must NOT be served
    /// directly — it gets warm-start trees instead, one per cached front
    /// member.
    #[test]
    fn cached_front_never_serves_tighter_requests(
        n_off in arb_n_off(),
        topo in arb_topo(),
        extra in arb_extra(),
    ) {
        let catalog = moqo_tpch::catalog(0.01);
        let graph = moqo_tpch::large_join_graph_with(
            &catalog,
            2 + n_off,
            moqo_tpch::Topology::ALL[topo],
        );
        let params = CostModelParams::default();
        let model = CostModel::new(&params, &catalog, &graph);
        let pref = preference();
        let alpha = 1.5 + extra; // cached guarantee
        let requested = 1.0 + extra * 0.5; // strictly tighter

        let approx = rta(&model, &pref, alpha, &Deadline::unlimited());
        let cache = PlanCache::new(4, 1);
        let key = CacheKey {
            graph: graph.signature(),
            preference: pref.signature(),
        };
        let mode = PruneMode::auto(params.enable_sampling, pref.objectives);
        cache.insert(key, &graph, &approx.final_plans, &approx.arena, alpha, mode, pref.objectives);
        match cache.lookup(&key, &graph, requested, false, mode) {
            CacheLookup::NotServable { alpha: cached, .. } => {
                prop_assert_eq!(cached, alpha);
                let (trees, warm_alpha) =
                    cache.warm_trees(&key, &graph).expect("entry is resident");
                prop_assert_eq!(warm_alpha, alpha);
                prop_assert_eq!(trees.len(), approx.final_plans.len());
            }
            CacheLookup::Hit { .. } => {
                prop_assert!(false, "α′ < α must not be served directly")
            }
            CacheLookup::Miss => prop_assert!(false, "the entry is resident"),
        }
    }

    /// Bounded requests are only served by exact fronts (Figure 8): an
    /// approximate entry must fall back to warm start for them.
    #[test]
    fn bounded_requests_need_exact_fronts(n_off in arb_n_off(), topo in arb_topo(), extra in arb_extra()) {
        let catalog = moqo_tpch::catalog(0.01);
        let graph = moqo_tpch::large_join_graph_with(
            &catalog,
            2 + n_off,
            moqo_tpch::Topology::ALL[topo],
        );
        let params = CostModelParams::default();
        let model = CostModel::new(&params, &catalog, &graph);
        let pref = preference();
        let alpha = 1.2 + extra;
        let approx = rta(&model, &pref, alpha, &Deadline::unlimited());
        let cache = PlanCache::new(4, 1);
        let key = CacheKey {
            graph: graph.signature(),
            preference: pref.signature(),
        };
        let mode = PruneMode::auto(params.enable_sampling, pref.objectives);
        cache.insert(key, &graph, &approx.final_plans, &approx.arena, alpha, mode, pref.objectives);
        prop_assert!(matches!(
            cache.lookup(&key, &graph, alpha + 1.0, true, mode),
            CacheLookup::NotServable { .. }
        ));

        // An exact entry serves bounded requests at any tolerance.
        let exact = exa(&model, &pref, &Deadline::unlimited());
        cache.insert(key, &graph, &exact.final_plans, &exact.arena, 1.0, mode, pref.objectives);
        prop_assert!(matches!(
            cache.lookup(&key, &graph, 1.0 + extra, true, mode),
            CacheLookup::Hit { .. }
        ));
    }
}

/// Applies a relation relabelling `perm[old] = new` to a graph.
fn permute_graph(g: &JoinGraph, perm: &[usize]) -> JoinGraph {
    let mut rels: Vec<BaseRel> = g.rels.clone();
    for (old, r) in g.rels.iter().enumerate() {
        rels[perm[old]] = r.clone();
    }
    let edges = g
        .edges
        .iter()
        .map(|e| JoinEdge {
            left_rel: perm[e.left_rel],
            right_rel: perm[e.right_rel],
            ..e.clone()
        })
        .collect();
    JoinGraph { rels, edges }
}

proptest! {
    /// Graph signatures are invariant under relation permutation, edge
    /// reordering, and edge orientation flips.
    #[test]
    fn graph_signature_permutation_invariant(
        n_off in 0usize..5,
        topo in arb_topo(),
        perm_seed in 0u64..1000,
        flip_bits in 0u32..256,
    ) {
        let catalog = moqo_tpch::catalog(0.01);
        let n = 2 + n_off;
        let graph = moqo_tpch::large_join_graph_with(
            &catalog,
            n,
            moqo_tpch::Topology::ALL[topo],
        );
        // A deterministic permutation from the seed (Fisher–Yates with a
        // splitmix-style step).
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = perm_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        for i in (1..n).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            perm.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let mut permuted = permute_graph(&graph, &perm);
        // Also reorder and flip edges.
        let n_edges = permuted.edges.len().max(1);
        permuted.edges.rotate_left(flip_bits as usize % n_edges);
        for (i, e) in permuted.edges.iter_mut().enumerate() {
            if flip_bits & (1 << (i % 32)) != 0 {
                std::mem::swap(&mut e.left_rel, &mut e.right_rel);
                std::mem::swap(&mut e.left_col, &mut e.right_col);
            }
        }
        prop_assert_eq!(graph.signature(), permuted.signature());
    }

    /// Preference signatures are invariant under positive weight rescaling
    /// and sensitive to proportion changes.
    #[test]
    fn preference_signature_scale_invariant(
        w1 in 1u32..1000,
        w2 in 1u32..1000,
        scale_exp in -6i32..7,
    ) {
        let scale = 10f64.powi(scale_exp);
        let (w1, w2) = (f64::from(w1), f64::from(w2));
        let base = Preference::over(ObjectiveSet::empty())
            .weight(Objective::TotalTime, w1)
            .weight(Objective::Energy, w2);
        let scaled = Preference::over(ObjectiveSet::empty())
            .weight(Objective::TotalTime, w1 * scale)
            .weight(Objective::Energy, w2 * scale);
        prop_assert_eq!(base.signature(), scaled.signature());
        // Perturbing the proportion beyond the quantization grid changes
        // the signature.
        let skewed = Preference::over(ObjectiveSet::empty())
            .weight(Objective::TotalTime, w1 * 1.01)
            .weight(Objective::Energy, w2);
        prop_assert_ne!(base.signature(), skewed.signature());
    }
}
