//! Property coverage for the log-bucket histogram's quantile error bound.
//!
//! The histogram's contract (see `moqo_service::LogHistogram`) is that any
//! reported quantile is the lower bound of the bucket holding the exact
//! order statistic — never above the exact answer, and below it by at most
//! one log-bucket (≤ 12.5% of the value; exact below 8 µs). These tests pin
//! that bound against the ground truth a sorted vector gives, on random
//! latency streams spanning the microsecond-to-minute range the service
//! actually sees.

use proptest::prelude::*;

use moqo_service::LogHistogram;

/// The exact quantile under the histogram's rank convention:
/// `sorted[round(p · (n − 1))]`.
fn exact_quantile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
    #[allow(clippy::cast_sign_loss)]
    let rank = (p.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_stay_within_one_bucket_of_exact(
        values in prop::collection::vec(0u64..120_000_000, 1..400),
        p_millis in 0u64..=1000,
    ) {
        let h = LogHistogram::new();
        for &v in &values {
            h.record_us(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();

        #[allow(clippy::cast_precision_loss)]
        let p = p_millis as f64 / 1000.0;
        let exact = exact_quantile(&sorted, p);
        let got = h.snapshot().quantile_us(p);
        let (lo, hi) = LogHistogram::bucket_bounds(exact);

        // The reported quantile is the lower bound of the exact answer's
        // bucket: never above the truth, within one bucket below it.
        prop_assert_eq!(got, lo, "p={} exact={} bucket=[{},{}]", p, exact, lo, hi);
        prop_assert!(got <= exact);
        // One log-bucket ≡ ≤ 12.5% relative undershoot (exact below 8 µs).
        if exact >= 8 {
            prop_assert!(exact - got <= exact.div_ceil(8));
        } else {
            prop_assert_eq!(got, exact);
        }
    }

    #[test]
    fn canonical_percentiles_hold_the_bound(
        values in prop::collection::vec(1u64..600_000_000, 2..200),
    ) {
        let h = LogHistogram::new();
        for &v in &values {
            h.record_us(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), values.len() as u64);

        for p in [0.5, 0.95, 0.99] {
            let exact = exact_quantile(&sorted, p);
            let got = snap.quantile_us(p);
            prop_assert!(got <= exact, "p{} reported {} above exact {}", p, got, exact);
            prop_assert!(
                exact - got <= exact.div_ceil(8),
                "p{}: {} undershoots exact {} by more than one bucket",
                p,
                got,
                exact
            );
        }
    }
}
