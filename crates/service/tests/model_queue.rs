//! Model-checked invariants of the sharded lock-free [`BoundedQueue`]
//! (run with `RUSTFLAGS="--cfg moqo_model" cargo test -p moqo_service
//! --test model_queue --release`).
//!
//! Every test explores ≥10k interleavings (bounded-exhaustive DFS with a
//! preemption budget, topped up by a seeded random walk) of the *real*
//! queue code — the same `queue.rs` that serves production, compiled onto
//! the `moqo_sync` model shims. These are the proofs backing the relaxed
//! memory orderings on the `len` capacity gate and the `sleepers`
//! retirement (see the ordering comments in `queue.rs`).
#![cfg(moqo_model)]

use moqo_service::{BoundedQueue, PushError};
use moqo_sync::model::{self, Config};
use moqo_sync::thread;

fn cfg() -> Config {
    Config::smoke()
}

/// Exactly-once delivery across the steal path: two consumers with
/// different shard hints race over a 2-shard queue; every pushed item is
/// popped exactly once, no loss, no duplication.
#[test]
fn pushes_pop_exactly_once() {
    let report = model::check("pushes_pop_exactly_once", &cfg(), || {
        let q = BoundedQueue::with_shards(4, 2);
        let consumers: Vec<_> = (0..2)
            .map(|i| {
                let q = q.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop_blocking_from(i) {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for v in 0..3u32 {
            q.try_push(v).expect("reserved capacity");
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().expect("consumer"))
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2], "each item must arrive exactly once");
    });
    assert!(report.coverage_ok(10_000), "coverage too low: {report:?}");
}

/// The `Full` contract under racing producers (PR 9 regression, and the
/// two-producer admission gate): a capacity-1 queue admits exactly one of
/// two concurrent pushes in *every* interleaving, and the rejected push
/// hands back exactly its own item.
#[test]
fn try_push_full_returns_item() {
    let report = model::check("try_push_full_returns_item", &cfg(), || {
        let q = BoundedQueue::new(1);
        let racer = {
            let q = q.clone();
            thread::spawn(move || q.try_push(2u32))
        };
        let r1 = q.try_push(1u32);
        let r2 = racer.join().expect("producer");
        let successes = [&r1, &r2].iter().filter(|r| r.is_ok()).count();
        assert_eq!(successes, 1, "capacity 1 admits exactly one of two pushes");
        for (r, pushed) in [(r1, 1u32), (r2, 2u32)] {
            if let Err((e, item)) = r {
                assert_eq!(e, PushError::Full);
                assert_eq!(item, pushed, "a rejected push must return its own item");
            }
        }
        assert!(q.pop_blocking().is_some(), "the admitted item is popped");
    });
    assert!(report.coverage_ok(10_000), "coverage too low: {report:?}");
}

/// Close-then-drain completeness: items pushed before (or racing with)
/// `close` are all delivered before the consumer sees the shutdown
/// `None`. This is the invariant that lets the `len` decrement in `scan`
/// stay Relaxed — the drain loop terminates on `len == 0` and the counter
/// only ever reads transiently *high*, never low.
#[test]
fn close_then_drain_conserves_items() {
    let report = model::check("close_then_drain_conserves_items", &cfg(), || {
        let q = BoundedQueue::with_shards(4, 2);
        let consumer = {
            let q = q.clone();
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop_blocking_from(1) {
                    got.push(v);
                }
                got
            })
        };
        q.try_push(10u32).expect("capacity");
        q.try_push(20u32).expect("capacity");
        q.close();
        let mut got = consumer.join().expect("consumer");
        got.sort_unstable();
        assert_eq!(got, vec![10, 20], "close must drain, not drop");
    });
    assert!(report.coverage_ok(10_000), "coverage too low: {report:?}");
}

/// PR 8 regression: a shard whose owning consumer never pops (dead
/// worker) is fully drained by a surviving consumer through the steal
/// scan — exactly once per item.
#[test]
fn dead_consumer_shard_is_drained_by_survivors_exactly_once() {
    let report = model::check("dead_consumer_shard_drained", &cfg(), || {
        let q = BoundedQueue::with_shards(4, 2);
        // Round-robin scatters one item into each shard; shard 1's owner
        // is dead (never spawned), so the survivor must steal.
        q.try_push(1u32).expect("capacity");
        q.try_push(2u32).expect("capacity");
        let survivor = {
            let q = q.clone();
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop_blocking_from(0) {
                    got.push(v);
                }
                got
            })
        };
        q.close();
        let mut got = survivor.join().expect("survivor");
        got.sort_unstable();
        assert_eq!(
            got,
            vec![1, 2],
            "the dead shard's item must be stolen exactly once"
        );
    });
    assert!(report.coverage_ok(10_000), "coverage too low: {report:?}");
}

/// The 5 ms-park lost-wakeup backstop: a consumer that parks *just* after
/// the producer's sleeper check (so the bare `notify_one` is never sent)
/// still gets the item — the bounded `wait_timeout` converts the lost
/// wakeup into one timeout tick instead of a hang. The model schedules
/// the timeout as an always-possible wakeup, so every lost-notify
/// interleaving is explored.
#[test]
fn parked_consumer_always_wakes() {
    let report = model::check("parked_consumer_always_wakes", &cfg(), || {
        let q = BoundedQueue::new(2);
        let consumer = {
            let q = q.clone();
            thread::spawn(move || q.pop_blocking())
        };
        q.try_push(7u32).expect("capacity");
        assert_eq!(
            consumer.join().expect("consumer"),
            Some(7),
            "a parked consumer must eventually see the push"
        );
    });
    assert!(report.coverage_ok(10_000), "coverage too low: {report:?}");
}
