//! Seeded-bug detection: prove the model checker *fails* — determin-
//! istically, with a replayable schedule — when a known ordering bug is
//! injected into the production structures (run with
//! `RUSTFLAGS="--cfg moqo_model" cargo test -p moqo_service --test
//! model_seeded --release`).
//!
//! Each test flips a `model_hooks` knob that demotes one specific
//! `Release` store to `Relaxed` (the canonical "forgot the release
//! fence" bug), asserts the checker reports a violation naming the right
//! class, and replays the reported decision schedule to reproduce the
//! exact failing interleaving — the workflow a developer follows from a
//! CI failure message (`MOQO_MODEL_REPLAY="<schedule>"`).
#![cfg(moqo_model)]

use moqo_service::model_internals::{queue_hooks, trace_hooks, EventRing};
use moqo_service::{BoundedQueue, EventKind, TraceEvent};
use moqo_sync::model::{self, Config};
use moqo_sync::raw::Ordering as RawOrdering;
use moqo_sync::thread;
use moqo_sync::Arc;

/// The weaken knobs are process-global; tests in this binary serialize
/// on this lock so one test's injected bug cannot leak into another.
static KNOB_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Restores a knob even if the test panics mid-way.
struct KnobGuard(&'static moqo_sync::raw::AtomicBool);
impl Drop for KnobGuard {
    fn drop(&mut self) {
        self.0.store(false, RawOrdering::SeqCst);
    }
}

fn exploring_config() -> Config {
    Config {
        dfs_budget: 3_000,
        min_executions: 3_000,
        ..Config::default()
    }
}

/// Weakening the queue's slot-publish store to `Relaxed` breaks the
/// hand-off: the consumer can win the dequeue CAS without having
/// synchronized with the producer's payload write — a data race the
/// checker reports with a replayable schedule.
#[test]
fn weakened_queue_publish_is_caught_and_replays() {
    let _serial = KNOB_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let _restore = KnobGuard(&queue_hooks::WEAKEN_PUBLISH);
    queue_hooks::WEAKEN_PUBLISH.store(true, RawOrdering::SeqCst);

    let scenario = || {
        let q = BoundedQueue::new(2);
        let consumer = {
            let q = q.clone();
            thread::spawn(move || q.pop_blocking())
        };
        q.try_push(7u32).expect("capacity");
        assert_eq!(consumer.join().expect("consumer"), Some(7));
    };
    let report = model::explore(&exploring_config(), scenario);
    let failure = report
        .failure
        .expect("the weakened publish must be caught as a violation");
    assert!(
        failure.message.contains("data race"),
        "expected a data-race report for the unsynchronized slot payload, got: {}",
        failure.message
    );
    assert!(
        !failure.schedule.is_empty(),
        "a failure must carry its decision schedule for replay"
    );
    assert!(
        !failure.replay_token().is_empty(),
        "the replay token is printed for MOQO_MODEL_REPLAY"
    );
    // Deterministic replay: the recorded schedule reproduces the same
    // violation class on every re-run.
    for _ in 0..2 {
        let replayed = model::replay(&failure.schedule, scenario);
        let rf = replayed.failure.expect("replay must reproduce the failure");
        assert!(
            rf.message.contains("data race"),
            "replay diverged: {}",
            rf.message
        );
    }
}

/// The same scenario with the knob off is clean — the `Release` publish
/// is exactly what the hand-off needs, no more, no less.
#[test]
fn unweakened_queue_publish_is_clean() {
    let _serial = KNOB_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let report = model::check("unweakened_queue_publish", &exploring_config(), || {
        let q = BoundedQueue::new(2);
        let consumer = {
            let q = q.clone();
            thread::spawn(move || q.pop_blocking())
        };
        q.try_push(7u32).expect("capacity");
        assert_eq!(consumer.join().expect("consumer"), Some(7));
    });
    assert!(report.failure.is_none());
}

/// Weakening the seqlock commit stamp to `Relaxed` lets a reader
/// validate a slot whose payload words it never synchronized with — the
/// checker finds an interleaving where a stale-word event passes
/// validation (a torn read).
#[test]
fn weakened_trace_commit_is_caught() {
    let _serial = KNOB_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let _restore = KnobGuard(&trace_hooks::WEAKEN_COMMIT);
    trace_hooks::WEAKEN_COMMIT.store(true, RawOrdering::SeqCst);

    let scenario = || {
        let ring = Arc::new(EventRing::new(2));
        let writer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                ring.record(&TraceEvent {
                    trace_id: 9,
                    ts: 9,
                    kind: EventKind::Submitted,
                    seq: 0,
                    arg0: 9,
                    arg1: 9,
                    arg2: 9,
                });
            })
        };
        let (events, _) = ring.snapshot();
        for e in &events {
            assert!(
                e.trace_id == e.ts && e.ts == e.arg0 && e.arg0 == e.arg1 && e.arg1 == e.arg2,
                "torn slot passed seqlock validation: {e:?}"
            );
        }
        writer.join().expect("writer");
    };
    let report = model::explore(&exploring_config(), scenario);
    let failure = report
        .failure
        .expect("the weakened commit must admit a torn read in some interleaving");
    assert!(
        failure.message.contains("torn slot"),
        "expected the torn-read assertion, got: {}",
        failure.message
    );
    let replayed = model::replay(&failure.schedule, scenario);
    assert!(
        replayed.failure.is_some(),
        "the torn-read schedule must replay deterministically"
    );
}
