//! Acceptance tests for the optimization service: a mixed 256-request load
//! at 4 workers where **every** response is either bit-equivalent to a
//! direct `Optimizer` call or a certified cache serve, plus determinism
//! under the single-worker test configuration.

use std::collections::HashMap;

use moqo_catalog::Catalog;
use moqo_core::{Algorithm, Optimizer, PlanEntry, PruneMode};
use moqo_cost::{CostVector, Objective, ObjectiveSet, Preference};
use moqo_service::{
    BlockSource, CacheKey, CacheLookup, OptimizationRequest, OptimizationService, PlanCache,
    ServiceError,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn weighted_pref() -> Preference {
    Preference::over(ObjectiveSet::empty())
        .weight(Objective::TotalTime, 1.0)
        .weight(Objective::BufferFootprint, 1e-6)
}

fn bounded_pref() -> Preference {
    weighted_pref().bound(Objective::TupleLoss, 0.0)
}

/// The mixed request pool: small/medium TPC-H blocks through the DP
/// schemes (α′ 1.0 and 2.0, weighted and bounded) plus all four large
/// join-graph topologies through hinted RMQ.
fn request_pool(catalog: &Catalog) -> Vec<OptimizationRequest> {
    use moqo_tpch::{large_query_with, query, Topology};
    let rmq = Algorithm::Rmq {
        samples: 400,
        seed: 7,
        threads: 1,
    };
    let mut pool = vec![
        OptimizationRequest::new(query(catalog, 3), weighted_pref(), 1.0),
        OptimizationRequest::new(query(catalog, 3), weighted_pref(), 2.0),
        OptimizationRequest::new(query(catalog, 6), bounded_pref(), 1.0),
        OptimizationRequest::new(query(catalog, 12), weighted_pref(), 2.0),
        OptimizationRequest::new(query(catalog, 14), weighted_pref(), 1.0),
        // Multi-block query (two singleton blocks).
        OptimizationRequest::new(query(catalog, 4), weighted_pref(), 2.0),
    ];
    for topology in Topology::ALL {
        pool.push(
            OptimizationRequest::new(
                large_query_with(catalog, 10, topology),
                weighted_pref(),
                2.0,
            )
            .with_hint(rmq),
        );
    }
    pool
}

fn frontier_costs(entries: &[PlanEntry]) -> Vec<CostVector> {
    entries.iter().map(|e| e.cost).collect()
}

/// Reference results for one (block, preference, algorithm) computed
/// outside the service, memoized by signature so the verification pass
/// stays fast.
struct Reference<'a> {
    optimizer: Optimizer<'a>,
    fresh: HashMap<(u64, u64, String), Vec<CostVector>>,
    warm: HashMap<(u64, u64, String), Vec<CostVector>>,
}

impl<'a> Reference<'a> {
    fn new(catalog: &'a Catalog) -> Self {
        Reference {
            optimizer: Optimizer::new(catalog),
            fresh: HashMap::new(),
            warm: HashMap::new(),
        }
    }

    fn key(
        graph: &moqo_catalog::JoinGraph,
        preference: &Preference,
        algorithm: Algorithm,
    ) -> (u64, u64, String) {
        (
            graph.signature().0,
            preference.signature().0,
            format!("{algorithm:?}"),
        )
    }

    /// The frontier a fresh direct `optimize_block` produces.
    fn fresh_front(
        &mut self,
        graph: &moqo_catalog::JoinGraph,
        preference: &Preference,
        algorithm: Algorithm,
    ) -> Vec<CostVector> {
        let key = Self::key(graph, preference, algorithm);
        if let Some(found) = self.fresh.get(&key) {
            return found.clone();
        }
        let (block, _) = self.optimizer.optimize_block(graph, preference, algorithm);
        let costs = frontier_costs(&block.frontier);
        self.fresh.insert(key, costs.clone());
        costs
    }

    /// The frontier a warm-started `optimize_block_warm` produces when
    /// seeded from the fresh run's front — exactly what the service's
    /// cache hands to RMQ on a warm start.
    fn warm_front(
        &mut self,
        graph: &moqo_catalog::JoinGraph,
        preference: &Preference,
        algorithm: Algorithm,
    ) -> Vec<CostVector> {
        let key = Self::key(graph, preference, algorithm);
        if let Some(found) = self.warm.get(&key) {
            return found.clone();
        }
        let (fresh_block, _) = self.optimizer.optimize_block(graph, preference, algorithm);
        let trees = fresh_block.frontier_trees();
        let (block, _) = self
            .optimizer
            .optimize_block_warm(graph, preference, algorithm, &trees);
        let costs = frontier_costs(&block.frontier);
        self.warm.insert(key, costs.clone());
        costs
    }
}

#[test]
fn mixed_load_equals_direct_optimization_or_certified_hits() {
    let catalog = moqo_tpch::catalog(0.01);
    let service = OptimizationService::builder(catalog.clone())
        .workers(4)
        .queue_capacity(512)
        .cache_capacity(256)
        .build();
    let pool = request_pool(&catalog);

    // A skewed trace: ~60% of the 256 requests draw from three pool
    // entries, the rest spread across the full pool.
    let mut rng = StdRng::seed_from_u64(2024);
    let mut trace: Vec<usize> = Vec::with_capacity(256);
    for _ in 0..256 {
        let hot: f64 = rng.gen_range(0.0..1.0);
        trace.push(if hot < 0.6 {
            rng.gen_range(0..3)
        } else {
            rng.gen_range(0..pool.len())
        });
    }

    let tickets: Vec<_> = trace
        .iter()
        .map(|&i| {
            service
                .submit(pool[i].clone())
                .expect("queue capacity covers the trace")
        })
        .collect();
    let responses: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().expect("no deadlines, nothing is rejected"))
        .collect();
    assert_eq!(responses.len(), 256);

    let mut reference = Reference::new(&catalog);
    let mut hits = 0usize;
    let mut computed = 0usize;
    let mut warmed = 0usize;
    for (&combo, response) in trace.iter().zip(&responses) {
        let request = &pool[combo];
        assert_eq!(response.blocks.len(), request.query.blocks.len());
        assert!(response.weighted_cost.is_finite());
        for (graph, block) in request.query.blocks.iter().zip(&response.blocks) {
            let served = frontier_costs(&block.frontier);
            assert!(!served.is_empty());
            match &block.source {
                BlockSource::CacheHit { certificate } => {
                    hits += 1;
                    assert!(
                        certificate.is_valid(),
                        "hit without a valid certificate: {certificate:?}"
                    );
                    assert!(certificate.cached_alpha <= request.alpha);
                    // α′-coverage, certified against the exact front: the
                    // served front must α′-cover the true Pareto frontier.
                    let exact =
                        reference.fresh_front(graph, &request.preference, Algorithm::Exhaustive);
                    assert!(
                        moqo_cost::pareto_front::is_approx_pareto_set(
                            &served,
                            &exact,
                            request.alpha,
                            request.preference.objectives,
                        ),
                        "cached front does not α′-cover the exact frontier"
                    );
                }
                BlockSource::Computed { algorithm, .. } => {
                    computed += 1;
                    let expected = reference.fresh_front(graph, &request.preference, *algorithm);
                    assert_eq!(
                        served, expected,
                        "computed front must match the direct optimizer call"
                    );
                }
                BlockSource::WarmStarted { algorithm, .. } => {
                    warmed += 1;
                    let expected = reference.warm_front(graph, &request.preference, *algorithm);
                    assert_eq!(
                        served, expected,
                        "warm-started front must match a direct warm-started call"
                    );
                }
            }
        }
    }

    let metrics = service.shutdown();
    assert_eq!(metrics.completed, 256);
    assert_eq!(metrics.rejected, 0);
    assert!(hits > 0, "a skewed trace must produce cache hits");
    assert!(computed > 0);
    assert_eq!(metrics.cache.hits, hits as u64);
    assert_eq!(
        metrics.blocks_cached, hits as u64,
        "block mix must agree with per-response sources"
    );
    // Every block was served one of the three ways.
    assert_eq!(
        metrics.blocks_cached
            + metrics.blocks_exa
            + metrics.blocks_rta
            + metrics.blocks_ira
            + metrics.blocks_rmq,
        (hits + computed + warmed) as u64
    );
    assert!(metrics.p95 >= metrics.p50);
    assert!(metrics.throughput_rps > 0.0);
}

#[test]
fn single_worker_processing_is_deterministic() {
    let catalog = moqo_tpch::catalog(0.01);
    let pool = request_pool(&catalog);
    let run = || -> Vec<(f64, Vec<Vec<CostVector>>)> {
        let service = OptimizationService::builder(catalog.clone())
            .workers(1)
            .queue_capacity(64)
            .build();
        let mut out = Vec::new();
        // Two passes over the pool: the second is served from the cache
        // wherever certificates allow.
        for _ in 0..2 {
            for request in &pool {
                let response = service.submit_wait(request.clone()).unwrap();
                out.push((
                    response.weighted_cost,
                    response
                        .blocks
                        .iter()
                        .map(|b| frontier_costs(&b.frontier))
                        .collect(),
                ));
            }
        }
        out
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.0.to_bits(), y.0.to_bits(), "weighted costs must agree");
        assert_eq!(x.1, y.1, "fronts must be bit-identical across runs");
    }
}

#[test]
fn second_identical_request_is_served_from_cache() {
    let catalog = moqo_tpch::catalog(0.01);
    let service = OptimizationService::builder(catalog.clone())
        .workers(1)
        .build();
    let request = OptimizationRequest::new(moqo_tpch::query(&catalog, 3), weighted_pref(), 2.0);
    let first = service.submit_wait(request.clone()).unwrap();
    assert!(!first.fully_cached());
    let second = service.submit_wait(request).unwrap();
    assert!(
        second.fully_cached(),
        "identical request must hit the cache"
    );
    assert_eq!(first.weighted_cost, second.weighted_cost);
    let snap = service.cache_snapshot();
    assert!(snap.hits >= 1);
    assert!(snap.hit_ratio() > 0.0);
}

#[test]
fn tighter_alpha_request_recomputes_and_tightens_the_entry() {
    let catalog = moqo_tpch::catalog(0.01);
    let service = OptimizationService::builder(catalog.clone())
        .workers(1)
        .build();
    let query = moqo_tpch::query(&catalog, 3);
    // Loose request first: cached at α = 2.
    let loose = service
        .submit_wait(OptimizationRequest::new(
            query.clone(),
            weighted_pref(),
            2.0,
        ))
        .unwrap();
    assert!(matches!(
        loose.blocks[0].source,
        BlockSource::Computed {
            algorithm: Algorithm::Rta { .. },
            ..
        }
    ));
    // Exactness demanded: the α = 2 entry cannot serve; EXA runs and the
    // entry tightens to α = 1.
    let exact = service
        .submit_wait(OptimizationRequest::new(
            query.clone(),
            weighted_pref(),
            1.0,
        ))
        .unwrap();
    assert!(matches!(
        exact.blocks[0].source,
        BlockSource::Computed {
            algorithm: Algorithm::Exhaustive,
            ..
        }
    ));
    // The entry now carries α = 1, so the same preference is served from
    // the cache at every tolerance, including exactness.
    for alpha in [1.0, 1.5, 10.0] {
        let served = service
            .submit_wait(OptimizationRequest::new(
                query.clone(),
                weighted_pref(),
                alpha,
            ))
            .unwrap();
        assert!(served.fully_cached(), "α′ = {alpha} must hit the α=1 entry");
        assert_eq!(served.weighted_cost, exact.weighted_cost);
    }
    // A different preference is a different key: no hit.
    let other_pref = service
        .submit_wait(OptimizationRequest::new(
            query,
            weighted_pref().bound(Objective::TupleLoss, 0.0),
            1.0,
        ))
        .unwrap();
    assert!(matches!(
        other_pref.blocks[0].source,
        BlockSource::Computed { .. }
    ));
}

/// Mode-mismatched cache entries are never served, end to end.
///
/// Within one service the required mode is a function of the request's
/// objective set, and the preference signature keys the cache — so the only
/// way a mismatch can reach `lookup` is a signature collision. The test
/// forces exactly that with real optimizer fronts: a genuine props-aware
/// EXA front (sampling on, `TupleLoss` unselected) inserted under one key
/// must refuse a cost-only consumer of the same key in both directions,
/// regardless of how tight its α is. At the service level, requests whose
/// objectives flip the mode use distinct keys and therefore recompute
/// rather than cross-serve.
#[test]
fn mode_mismatched_cache_entries_are_never_served() {
    let catalog = moqo_tpch::catalog(0.01);
    let query = moqo_tpch::query(&catalog, 3);
    let graph = &query.blocks[0];
    let optimizer = Optimizer::new(&catalog);

    // A real props-aware exact front (default params keep sampling on).
    let pref = weighted_pref();
    let (block, report) = optimizer.optimize_block(graph, &pref, Algorithm::Exhaustive);
    assert_eq!(report.prune_mode, PruneMode::PropsAware);
    assert_eq!(report.alpha_final, 1.0);

    let cache = PlanCache::new(8, 1);
    let key = CacheKey {
        graph: graph.signature(),
        preference: pref.signature(),
    };
    cache.insert(
        key,
        graph,
        &block.frontier,
        &block.arena,
        report.alpha_final,
        report.prune_mode,
        pref.objectives,
    );

    // A colliding cost-only consumer (what a TupleLoss-selecting request
    // would require) is refused at any tolerance…
    for alpha in [1.0, 2.0, 1000.0] {
        assert!(
            matches!(
                cache.lookup(&key, graph, alpha, false, PruneMode::CostOnly),
                CacheLookup::NotServable { .. }
            ),
            "α′ = {alpha}: a props-aware front must never serve a cost-only request"
        );
    }
    // …while the matching mode serves directly.
    assert!(matches!(
        cache.lookup(&key, graph, 1.0, false, PruneMode::PropsAware),
        CacheLookup::Hit { .. }
    ));

    // The reverse direction: a cost-only front (TupleLoss selected) never
    // serves a props-aware consumer.
    let loss_pref = weighted_pref().weight(Objective::TupleLoss, 1e3);
    let (loss_block, loss_report) =
        optimizer.optimize_block(graph, &loss_pref, Algorithm::Exhaustive);
    assert_eq!(loss_report.prune_mode, PruneMode::CostOnly);
    let cache2 = PlanCache::new(8, 1);
    cache2.insert(
        key,
        graph,
        &loss_block.frontier,
        &loss_block.arena,
        1.0,
        loss_report.prune_mode,
        loss_pref.objectives,
    );
    assert!(matches!(
        cache2.lookup(&key, graph, 10.0, false, PruneMode::PropsAware),
        CacheLookup::NotServable { .. }
    ));

    // Service level: the two preference classes hash to different keys, so
    // the second request recomputes instead of touching the first entry —
    // and certificates always record matching modes.
    let service = OptimizationService::builder(catalog.clone())
        .workers(1)
        .build();
    let first = service
        .submit_wait(OptimizationRequest::new(query.clone(), pref, 1.0))
        .unwrap();
    assert!(matches!(
        first.blocks[0].source,
        BlockSource::Computed { .. }
    ));
    let hit = service
        .submit_wait(OptimizationRequest::new(
            query.clone(),
            weighted_pref(),
            1.0,
        ))
        .unwrap();
    match &hit.blocks[0].source {
        BlockSource::CacheHit { certificate } => {
            assert!(certificate.is_valid());
            assert_eq!(certificate.cached_mode, certificate.required_mode);
            assert_eq!(certificate.cached_mode, PruneMode::PropsAware);
        }
        other => panic!("expected a cache hit, got {other:?}"),
    }
    let crossed = service
        .submit_wait(OptimizationRequest::new(query.clone(), loss_pref, 1.0))
        .unwrap();
    assert!(
        matches!(crossed.blocks[0].source, BlockSource::Computed { .. }),
        "a mode-flipping preference is a different key and must recompute"
    );
}

#[test]
fn queue_full_rejects_and_counts() {
    let catalog = moqo_tpch::catalog(0.01);
    // One worker, tiny queue, and requests that take long enough for the
    // queue to fill: expansive large-graph RMQ runs.
    let service = OptimizationService::builder(catalog.clone())
        .workers(1)
        .queue_capacity(2)
        .build();
    let request = OptimizationRequest::new(
        moqo_tpch::large_query_with(&catalog, 12, moqo_tpch::Topology::Clique),
        weighted_pref(),
        2.0,
    )
    .with_hint(Algorithm::Rmq {
        samples: 20_000,
        seed: 1,
        threads: 1,
    });
    let mut tickets = Vec::new();
    let mut full = 0;
    for _ in 0..16 {
        match service.submit(request.clone()) {
            Ok(t) => tickets.push(t),
            Err(ServiceError::QueueFull) => full += 1,
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    assert!(full > 0, "a 2-slot queue cannot absorb 16 slow requests");
    for t in tickets {
        t.wait().unwrap();
    }
    assert_eq!(service.metrics().queue_full, full);
}

#[test]
fn deadline_admission_rejects_unmeetable_requests() {
    let catalog = moqo_tpch::catalog(0.01);
    let service = OptimizationService::builder(catalog.clone())
        .workers(1)
        .build();
    let request = OptimizationRequest::new(moqo_tpch::query(&catalog, 3), weighted_pref(), 1.0)
        .with_deadline(std::time::Duration::ZERO);
    match service.submit_wait(request) {
        Err(ServiceError::Rejected(reason)) => {
            assert!(reason.contains("admits no algorithm"), "{reason}");
        }
        other => panic!("expected rejection, got {other:?}"),
    }
    assert_eq!(service.metrics().rejected, 1);
}

/// Hopeless deadlines never occupy a queue slot: the submit-time fast path
/// rejects them before enqueue, and only the `rejected` counter moves.
#[test]
fn hopeless_deadlines_are_rejected_before_the_queue() {
    let catalog = moqo_tpch::catalog(0.01);
    let service = OptimizationService::builder(catalog.clone())
        .workers(1)
        .build();
    let request = OptimizationRequest::new(moqo_tpch::query(&catalog, 3), weighted_pref(), 1.0)
        .with_deadline(std::time::Duration::ZERO);
    match service.submit(request).map(|_| ()) {
        Err(ServiceError::Rejected(_)) => {}
        other => panic!("expected a submit-time rejection, got {other:?}"),
    }
    let metrics = service.metrics();
    assert_eq!(metrics.submitted, 0, "rejected requests never enqueue");
    assert_eq!(metrics.rejected, 1);
    assert_eq!(metrics.timed_out, 0);
    assert_eq!(metrics.failed, 0);
    assert_eq!(metrics.errors_total(), 1);
}

/// A request that passes submit-time admission but whose whole budget is
/// eaten by queue wait times out — landing in `timed_out`, not `rejected`.
#[test]
fn queue_wait_past_the_deadline_counts_as_timed_out() {
    let catalog = moqo_tpch::catalog(0.01);
    let service = OptimizationService::builder(catalog.clone())
        .workers(1)
        .queue_capacity(8)
        .build();
    // Occupy the only worker for a while.
    let blocker = OptimizationRequest::new(
        moqo_tpch::large_query_with(&catalog, 12, moqo_tpch::Topology::Clique),
        weighted_pref(),
        2.0,
    )
    .with_hint(Algorithm::Rmq {
        samples: 20_000,
        seed: 1,
        threads: 1,
    });
    let busy = service.submit(blocker).unwrap();
    // Admissible at submit (RMQ starts under 30 ms for a 3-relation
    // block), but the blocker holds the worker far longer than that.
    let doomed = OptimizationRequest::new(moqo_tpch::query(&catalog, 3), weighted_pref(), 2.0)
        .with_deadline(std::time::Duration::from_millis(30));
    let ticket = service.submit(doomed).expect("passes submit admission");
    match ticket.wait() {
        Err(ServiceError::DeadlineExceeded) => {}
        other => panic!("expected a queue-wait timeout, got {other:?}"),
    }
    busy.wait().unwrap();
    let metrics = service.metrics();
    assert_eq!(metrics.timed_out, 1);
    assert_eq!(metrics.rejected, 0);
    assert_eq!(metrics.completed, 1);
    assert_eq!(metrics.errors_total(), 1);
}

#[test]
fn deadline_pressure_downgrades_to_the_anytime_search() {
    let catalog = moqo_tpch::catalog(0.01);
    let service = OptimizationService::builder(catalog.clone())
        .workers(1)
        .build();
    // 6-table block, exactness preferred, but only 2 ms of budget: the
    // policy's DP estimate (~2 µs · 3.5⁶ ≈ 4 ms) rules the DP out.
    let request = OptimizationRequest::new(
        moqo_tpch::large_query_with(&catalog, 6, moqo_tpch::Topology::Chain),
        weighted_pref(),
        1.0,
    )
    .with_deadline(std::time::Duration::from_millis(2));
    match service.submit_wait(request) {
        Ok(response) => {
            assert!(matches!(
                response.blocks[0].source,
                BlockSource::Computed {
                    algorithm: Algorithm::Rmq { .. },
                    downgraded: true,
                }
            ));
            assert!(service.metrics().downgraded_blocks >= 1);
        }
        // Queue wait can eat a tight budget on a loaded CI machine; the
        // rejection path is then the correct behaviour, not a failure.
        Err(ServiceError::Rejected(_)) => {}
        Err(other) => panic!("unexpected error {other:?}"),
    }
}
