//! Multi-thread stress coverage for the sharded lock-free queue.
//!
//! The contract under contention: every successfully pushed item is popped
//! exactly once (no loss, no duplication), `QueueFull` is the only way a
//! push fails before `close()`, and closing drains the backlog before
//! consumers observe `None`.

use moqo_sync::atomic::{AtomicU64, Ordering};
use moqo_sync::Mutex;
use std::collections::HashSet;
use std::thread;

use moqo_service::{BoundedQueue, PushError};

/// Hammers a queue with `producers` push threads and `consumers` pop
/// threads, then checks exactly-once delivery of everything accepted.
fn run_stress(shards: usize, producers: u64, consumers: usize, per_producer: u64) {
    let queue = BoundedQueue::with_shards(256, shards);
    let accepted = AtomicU64::new(0);
    let delivered: Mutex<Vec<u64>> = Mutex::new(Vec::new());

    thread::scope(|s| {
        for p in 0..producers {
            let queue = &queue;
            let accepted = &accepted;
            s.spawn(move || {
                for i in 0..per_producer {
                    let item = p * per_producer + i;
                    loop {
                        match queue.try_push(item) {
                            Ok(()) => {
                                accepted.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err((PushError::Full, _)) => thread::yield_now(),
                            Err((PushError::Closed, _)) => {
                                panic!("queue closed while producers were live")
                            }
                        }
                    }
                }
            });
        }
        for c in 0..consumers {
            let queue = &queue;
            let delivered = &delivered;
            s.spawn(move || {
                let mut local = Vec::new();
                while let Some(item) = queue.pop_blocking_from(c) {
                    local.push(item);
                }
                delivered.lock().unwrap().append(&mut local);
            });
        }
        // Producers retry on Full, so they all finish; close once their
        // handles are joined by the scope... which requires closing from
        // here after pushes complete. Spawn a closer that waits for the
        // full count.
        let queue = &queue;
        let accepted = &accepted;
        s.spawn(move || {
            let total = producers * per_producer;
            while accepted.load(Ordering::Relaxed) < total {
                thread::yield_now();
            }
            queue.close();
        });
    });

    let delivered = delivered.into_inner().unwrap();
    let total = producers * per_producer;
    assert_eq!(
        delivered.len() as u64,
        total,
        "lost or duplicated items: delivered {} of {total}",
        delivered.len()
    );
    let unique: HashSet<u64> = delivered.iter().copied().collect();
    assert_eq!(unique.len() as u64, total, "duplicate deliveries");
    assert!(queue.is_empty());
}

#[test]
fn single_shard_exactly_once_under_contention() {
    run_stress(1, 4, 2, 5_000);
}

#[test]
fn sharded_exactly_once_under_contention() {
    run_stress(4, 4, 4, 5_000);
}

#[test]
fn more_consumers_than_shards() {
    run_stress(2, 3, 6, 3_000);
}

/// A consumer dying mid-stream must not strand its shard's backlog: the
/// survivors steal it and exactly-once delivery still holds. This is the
/// queue-level half of the service's worker-death story (the supervisor
/// respawn is the other half) — correctness must not depend on the
/// replacement arriving.
#[test]
fn dead_consumer_shard_is_drained_by_survivors_exactly_once() {
    let shards = 4;
    let per_producer: u64 = 4_000;
    let producers: u64 = 4;
    let queue = BoundedQueue::with_shards(256, shards);
    let accepted = AtomicU64::new(0);
    let delivered: Mutex<Vec<u64>> = Mutex::new(Vec::new());

    thread::scope(|s| {
        for p in 0..producers {
            let queue = &queue;
            let accepted = &accepted;
            s.spawn(move || {
                for i in 0..per_producer {
                    let item = p * per_producer + i;
                    loop {
                        match queue.try_push(item) {
                            Ok(()) => {
                                accepted.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err((PushError::Full, _)) => thread::yield_now(),
                            Err((PushError::Closed, _)) => {
                                panic!("queue closed while producers were live")
                            }
                        }
                    }
                }
            });
        }
        // Consumer 0 "dies" early: it exits after a few hundred pops while
        // its shard still has (and keeps receiving) items. No replacement
        // is spawned — the other three must pick up the slack.
        {
            let queue = &queue;
            let delivered = &delivered;
            s.spawn(move || {
                let mut local = Vec::new();
                while local.len() < 300 {
                    match queue.pop_blocking_from(0) {
                        Some(item) => local.push(item),
                        None => break,
                    }
                }
                delivered.lock().unwrap().append(&mut local);
            });
        }
        for c in 1..shards {
            let queue = &queue;
            let delivered = &delivered;
            s.spawn(move || {
                let mut local = Vec::new();
                while let Some(item) = queue.pop_blocking_from(c) {
                    local.push(item);
                }
                delivered.lock().unwrap().append(&mut local);
            });
        }
        let queue = &queue;
        let accepted = &accepted;
        s.spawn(move || {
            let total = producers * per_producer;
            while accepted.load(Ordering::Relaxed) < total {
                thread::yield_now();
            }
            queue.close();
        });
    });

    let delivered = delivered.into_inner().unwrap();
    let total = producers * per_producer;
    assert_eq!(
        delivered.len() as u64,
        total,
        "dead consumer stranded items: delivered {} of {total}",
        delivered.len()
    );
    let unique: HashSet<u64> = delivered.iter().copied().collect();
    assert_eq!(unique.len() as u64, total, "duplicate deliveries");
    assert!(queue.is_empty());
}

#[test]
fn full_is_the_only_preclose_failure_and_reports_backpressure() {
    let queue: BoundedQueue<u64> = BoundedQueue::with_shards(4, 2);
    for i in 0..4 {
        queue.try_push(i).unwrap();
    }
    assert!(matches!(queue.try_push(99), Err((PushError::Full, 99))));
    assert_eq!(queue.len(), 4);
    queue.close();
    assert!(matches!(queue.try_push(5), Err((PushError::Closed, 5))));
    // The backlog survives close and drains in full.
    let mut drained = Vec::new();
    while let Some(v) = queue.pop_blocking() {
        drained.push(v);
    }
    drained.sort_unstable();
    assert_eq!(drained, vec![0, 1, 2, 3]);
}
