//! Model-checked seqlock invariants of the flight recorder's
//! [`EventRing`] (run with `RUSTFLAGS="--cfg moqo_model" cargo test -p
//! moqo_service --test model_trace --release`).
//!
//! The reader protocol (stamp → payload words → stamp recheck) must never
//! return a torn event, even while the writer is overwriting the very
//! slot being read. The suite drives patterned payloads whose words must
//! all agree; a single stale or mixed word is an instant assertion
//! failure in some interleaving. This suite is what surfaced the original
//! relaxed-payload torn-read window now documented on
//! `EventRing::record`.
#![cfg(moqo_model)]

use moqo_service::model_internals::EventRing;
use moqo_service::{EventKind, TraceEvent};
use moqo_sync::model::{self, Config};
use moqo_sync::thread;
use moqo_sync::Arc;

/// An event whose five checksummable words all carry the same nonzero
/// value — any mix of sessions (or leftover zero-init) is detectable.
fn patterned(i: u64) -> TraceEvent {
    let v = i + 1;
    TraceEvent {
        trace_id: v,
        ts: v,
        kind: EventKind::Submitted,
        seq: 0,
        arg0: v,
        arg1: v,
        arg2: v,
    }
}

fn assert_unmixed(events: &[TraceEvent]) {
    for e in events {
        assert!(
            e.trace_id == e.ts && e.ts == e.arg0 && e.arg0 == e.arg1 && e.arg1 == e.arg2,
            "torn slot passed seqlock validation: {e:?}"
        );
        assert!(
            e.trace_id >= 1,
            "zero-init words leaked through validation: {e:?}"
        );
    }
}

/// A concurrent snapshot over a 2-slot ring being overwritten mid-read
/// never yields a torn event: every validated slot is internally
/// consistent, in every interleaving (including weak-memory stale reads).
#[test]
fn snapshot_never_returns_torn_events() {
    let report = model::check(
        "snapshot_never_returns_torn_events",
        &Config::smoke(),
        || {
            let ring = Arc::new(EventRing::new(2));
            let writer = {
                let ring = Arc::clone(&ring);
                thread::spawn(move || {
                    // Three records into two slots: slot 0 is overwritten
                    // while the concurrent reader may be mid-validation.
                    for i in 0..3 {
                        ring.record(&patterned(i));
                    }
                })
            };
            let (events, _) = ring.snapshot();
            assert_unmixed(&events);
            writer.join().expect("writer");
            assert_eq!(ring.recorded(), 3, "every record lands in the head count");
            // A quiescent snapshot sees exactly the resident suffix, intact.
            let (settled, dropped) = ring.snapshot();
            assert_unmixed(&settled);
            assert_eq!(
                settled.len() as u64 + dropped,
                3,
                "resident + dropped = recorded"
            );
        },
    );
    assert!(report.coverage_ok(10_000), "coverage too low: {report:?}");
}

/// Two writers racing for slots: the `fetch_add` claim serializes slot
/// ownership, so concurrent readers still never see a mixed payload and
/// the head count is exact.
#[test]
fn racing_writers_never_tear() {
    let report = model::check("racing_writers_never_tear", &Config::smoke(), || {
        let ring = Arc::new(EventRing::new(2));
        let other = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                ring.record(&patterned(10));
            })
        };
        ring.record(&patterned(20));
        let (events, _) = ring.snapshot();
        assert_unmixed(&events);
        other.join().expect("writer");
        assert_eq!(ring.recorded(), 2);
    });
    assert!(report.coverage_ok(10_000), "coverage too low: {report:?}");
}
