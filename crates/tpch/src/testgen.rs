//! The paper's randomized test-case generator (§8).
//!
//! "Every test case is characterized by a set of considered objectives
//! (selected randomly out of the nine implemented objectives), by weights on
//! the selected objectives (chosen randomly from [0, 1] with uniform
//! distribution), and (only for bounded MOQO) by bounds on a subset of the
//! selected objectives. Bounds for objectives with a-priori bounded value
//! domain are chosen with uniform distribution from that domain. Bounds for
//! objectives with non-bounded value domains are chosen by multiplying the
//! minimal possible value for the given objective and query by a factor
//! chosen from [1, 2] with uniform distribution."

use rand::seq::SliceRandom;
use rand::Rng;

use moqo_catalog::{Catalog, Query};
use moqo_core::{combine_block_costs, min_cost_for_objective, Deadline};
use moqo_cost::{CostVector, Objective, ObjectiveSet, Preference};
use moqo_costmodel::{CostModel, CostModelParams};

/// One generated test case: a query number plus a full preference.
#[derive(Debug, Clone)]
pub struct TestCase {
    /// TPC-H query number (1–22).
    pub query_no: u8,
    /// Objectives, weights and (for bounded MOQO) bounds.
    pub preference: Preference,
}

/// Draws a random objective subset of the given cardinality.
fn random_objectives(rng: &mut impl Rng, count: usize) -> ObjectiveSet {
    assert!((1..=moqo_cost::NUM_OBJECTIVES).contains(&count));
    let mut all = Objective::ALL.to_vec();
    all.shuffle(rng);
    all.into_iter().take(count).collect()
}

/// Generates a *weighted* MOQO test case (Figure 9's setup): `n_objectives`
/// random objectives with weights drawn uniformly from `[0, 1]`; no bounds.
#[must_use]
pub fn weighted_test_case(rng: &mut impl Rng, query_no: u8, n_objectives: usize) -> TestCase {
    let objectives = random_objectives(rng, n_objectives);
    let mut preference = Preference::over(objectives);
    for o in objectives.iter() {
        preference.weights.set(o, rng.gen_range(0.0..1.0));
    }
    TestCase {
        query_no,
        preference,
    }
}

/// The minimal achievable combined cost vector for a query: per-block
/// single-objective optima combined with the block-composition rules. Used
/// to place feasible-by-construction lower anchors for bound generation.
#[must_use]
pub fn min_cost_vector(
    catalog: &Catalog,
    params: &CostModelParams,
    query: &Query,
    objectives: ObjectiveSet,
) -> CostVector {
    let block_minima: Vec<CostVector> = query
        .blocks
        .iter()
        .map(|graph| {
            let model = CostModel::new(params, catalog, graph);
            let mut v = CostVector::zero();
            for o in objectives.iter() {
                v.set(o, min_cost_for_objective(&model, o, &Deadline::unlimited()));
            }
            v
        })
        .collect();
    combine_block_costs(&block_minima)
}

/// Generates a *bounded* MOQO test case (Figure 10's setup): all bounded
/// runs in the paper consider nine objectives while the number of bounds
/// varies. Weights are uniform `[0, 1]` on the selected objectives; bounds
/// are placed on a random subset of `n_bounds` of them, drawn per §8.
#[must_use]
pub fn bounded_test_case(
    rng: &mut impl Rng,
    catalog: &Catalog,
    params: &CostModelParams,
    query: &Query,
    query_no: u8,
    n_objectives: usize,
    n_bounds: usize,
) -> TestCase {
    assert!(n_bounds <= n_objectives);
    let mut case = weighted_test_case(rng, query_no, n_objectives);
    let selected: Vec<Objective> = case.preference.objectives.iter().collect();
    let minima = min_cost_vector(catalog, params, query, case.preference.objectives);
    let mut bounded: Vec<Objective> = selected;
    bounded.shuffle(rng);
    for &o in bounded.iter().take(n_bounds) {
        let bound = if o.has_bounded_domain() {
            rng.gen_range(0.0..=1.0)
        } else {
            minima.get(o) * rng.gen_range(1.0..2.0)
        };
        case.preference.bounds.set(o, bound);
    }
    TestCase {
        query_no,
        preference: case.preference,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries;
    use moqo_catalog::tpch;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weighted_case_has_requested_objective_count() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1, 3, 6, 9] {
            let case = weighted_test_case(&mut rng, 3, n);
            assert_eq!(case.preference.objectives.len(), n);
            assert!(!case.preference.is_bounded());
            for o in case.preference.objectives.iter() {
                let w = case.preference.weights.get(o);
                assert!((0.0..=1.0).contains(&w));
            }
        }
    }

    #[test]
    fn weighted_case_is_deterministic_per_seed() {
        let a = weighted_test_case(&mut StdRng::seed_from_u64(42), 5, 6);
        let b = weighted_test_case(&mut StdRng::seed_from_u64(42), 5, 6);
        assert_eq!(a.preference, b.preference);
    }

    #[test]
    fn bounded_case_bounds_subset_of_objectives() {
        let cat = tpch::catalog(0.01);
        let params = CostModelParams::default();
        let q = queries::query(&cat, 12);
        let mut rng = StdRng::seed_from_u64(11);
        let case = bounded_test_case(&mut rng, &cat, &params, &q, 12, 9, 3);
        assert_eq!(case.preference.objectives.len(), 9);
        let bounded = case.preference.bounds.bounded_objectives();
        assert_eq!(bounded.len(), 3);
        assert!(bounded.is_subset(case.preference.objectives));
        assert!(case.preference.is_bounded());
    }

    #[test]
    fn unbounded_domain_bounds_anchor_at_minimum() {
        let cat = tpch::catalog(0.01);
        let params = CostModelParams::default();
        let q = queries::query(&cat, 14);
        let minima = min_cost_vector(&cat, &params, &q, ObjectiveSet::all());
        // Bounds on unbounded-domain objectives land in [min, 2·min).
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let case = bounded_test_case(&mut rng, &cat, &params, &q, 14, 9, 9);
            for o in case.preference.bounds.bounded_objectives().iter() {
                let b = case.preference.bounds.get(o);
                if o.has_bounded_domain() {
                    assert!((0.0..=1.0).contains(&b));
                } else {
                    assert!(
                        b >= minima.get(o) - 1e-9 && b <= 2.0 * minima.get(o) + 1e-9,
                        "{o}: bound {b} vs min {}",
                        minima.get(o)
                    );
                }
            }
        }
    }

    #[test]
    fn min_cost_vector_combines_blocks() {
        let cat = tpch::catalog(0.01);
        let params = CostModelParams::default();
        // Q4 has two singleton blocks; total-time minimum is the block sum.
        let q = queries::query(&cat, 4);
        let objs = ObjectiveSet::single(Objective::TotalTime);
        let combined = min_cost_vector(&cat, &params, &q, objs);
        let per_block: f64 = q
            .blocks
            .iter()
            .map(|g| {
                let model = CostModel::new(&params, &cat, g);
                min_cost_for_objective(&model, Objective::TotalTime, &Deadline::unlimited())
            })
            .sum();
        assert!((combined.get(Objective::TotalTime) - per_block).abs() < 1e-9);
    }
}
