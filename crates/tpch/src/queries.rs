//! The 22 TPC-H queries as join-graph blocks.
//!
//! Each query is translated into one or more [`JoinGraph`] blocks: the main
//! from-clause plus one block per (decorrelated) subquery or view, since the
//! Postgres optimizer — and therefore the paper's experimental platform —
//! optimizes different subqueries of the same query separately (§4).
//!
//! Filter selectivities are the standard TPC-H predicate selectivities at
//! the reference substitution parameters (e.g. Q6's `0.019`, Q3's segment
//! `1/5`); join selectivities follow the System-R rule
//! `1/max(distinct)` derived from the catalog, which is exact for the
//! key–foreign-key joins TPC-H uses.

use moqo_catalog::{Catalog, JoinGraph, JoinGraphBuilder, Query};

/// The paper's x-axis query order for Figures 5, 9 and 10: queries sorted by
/// the maximal number of tables in any of their from-clauses.
pub const FIGURE_ORDER: [u8; 22] = [
    1, 4, 6, 22, 12, 13, 14, 15, 16, 17, 19, 20, 3, 11, 18, 10, 21, 2, 5, 7, 9, 8,
];

/// Builds TPC-H query `number` (1–22) against `catalog`.
///
/// # Panics
///
/// Panics if `number` is outside `1..=22` or the catalog is not the TPC-H
/// catalog.
#[must_use]
pub fn query(catalog: &Catalog, number: u8) -> Query {
    let b = || JoinGraphBuilder::new(catalog);
    let blocks: Vec<JoinGraph> = match number {
        // Q1: pricing summary report — single scan of lineitem.
        1 => vec![b().rel("lineitem", 0.98).build()],
        // Q2: minimum-cost supplier; main block joins 5 tables, the
        // correlated min-subquery re-joins partsupp/supplier/nation/region.
        2 => vec![
            b().rel("part", 0.001)
                .rel("supplier", 1.0)
                .rel("partsupp", 1.0)
                .rel("nation", 1.0)
                .rel("region", 0.2)
                .join(("part", "p_partkey"), ("partsupp", "ps_partkey"))
                .join(("supplier", "s_suppkey"), ("partsupp", "ps_suppkey"))
                .join(("supplier", "s_nationkey"), ("nation", "n_nationkey"))
                .join(("nation", "n_regionkey"), ("region", "r_regionkey"))
                .build(),
            b().rel("partsupp", 1.0)
                .rel("supplier", 1.0)
                .rel("nation", 1.0)
                .rel("region", 0.2)
                .join(("supplier", "s_suppkey"), ("partsupp", "ps_suppkey"))
                .join(("supplier", "s_nationkey"), ("nation", "n_nationkey"))
                .join(("nation", "n_regionkey"), ("region", "r_regionkey"))
                .build(),
        ],
        // Q3: shipping priority.
        3 => vec![b()
            .rel("customer", 0.2)
            .rel("orders", 0.48)
            .rel("lineitem", 0.54)
            .join(("customer", "c_custkey"), ("orders", "o_custkey"))
            .join(("orders", "o_orderkey"), ("lineitem", "l_orderkey"))
            .build()],
        // Q4: order priority checking — orders plus an EXISTS subquery.
        4 => vec![
            b().rel("orders", 0.038).build(),
            b().rel("lineitem", 0.63).build(),
        ],
        // Q5: local supplier volume — the classic 6-way join.
        5 => vec![b()
            .rel("customer", 1.0)
            .rel("orders", 0.15)
            .rel("lineitem", 1.0)
            .rel("supplier", 1.0)
            .rel("nation", 1.0)
            .rel("region", 0.2)
            .join(("customer", "c_custkey"), ("orders", "o_custkey"))
            .join(("orders", "o_orderkey"), ("lineitem", "l_orderkey"))
            .join(("lineitem", "l_suppkey"), ("supplier", "s_suppkey"))
            .join(("customer", "c_nationkey"), ("supplier", "s_nationkey"))
            .join(("supplier", "s_nationkey"), ("nation", "n_nationkey"))
            .join(("nation", "n_regionkey"), ("region", "r_regionkey"))
            .build()],
        // Q6: forecasting revenue change — single highly selective scan.
        6 => vec![b().rel("lineitem", 0.019).build()],
        // Q7: volume shipping with two nation aliases.
        7 => vec![b()
            .rel("supplier", 1.0)
            .rel("lineitem", 0.3)
            .rel("orders", 1.0)
            .rel("customer", 1.0)
            .rel_aliased("nation", "n1", 0.08)
            .rel_aliased("nation", "n2", 0.08)
            .join(("supplier", "s_suppkey"), ("lineitem", "l_suppkey"))
            .join(("orders", "o_orderkey"), ("lineitem", "l_orderkey"))
            .join(("customer", "c_custkey"), ("orders", "o_custkey"))
            .join(("supplier", "s_nationkey"), ("n1", "n_nationkey"))
            .join(("customer", "c_nationkey"), ("n2", "n_nationkey"))
            .build()],
        // Q8: national market share — the 8-way join, the paper's largest
        // from-clause.
        8 => vec![b()
            .rel("part", 0.0067)
            .rel("supplier", 1.0)
            .rel("lineitem", 1.0)
            .rel("orders", 0.3)
            .rel("customer", 1.0)
            .rel_aliased("nation", "n1", 1.0)
            .rel_aliased("nation", "n2", 1.0)
            .rel("region", 0.2)
            .join(("part", "p_partkey"), ("lineitem", "l_partkey"))
            .join(("supplier", "s_suppkey"), ("lineitem", "l_suppkey"))
            .join(("lineitem", "l_orderkey"), ("orders", "o_orderkey"))
            .join(("orders", "o_custkey"), ("customer", "c_custkey"))
            .join(("customer", "c_nationkey"), ("n1", "n_nationkey"))
            .join(("n1", "n_regionkey"), ("region", "r_regionkey"))
            .join(("supplier", "s_nationkey"), ("n2", "n_nationkey"))
            .build()],
        // Q9: product type profit measure.
        9 => vec![b()
            .rel("part", 0.055)
            .rel("supplier", 1.0)
            .rel("lineitem", 1.0)
            .rel("partsupp", 1.0)
            .rel("orders", 1.0)
            .rel("nation", 1.0)
            .join(("supplier", "s_suppkey"), ("lineitem", "l_suppkey"))
            .join(("partsupp", "ps_suppkey"), ("lineitem", "l_suppkey"))
            .join(("partsupp", "ps_partkey"), ("lineitem", "l_partkey"))
            .join(("part", "p_partkey"), ("lineitem", "l_partkey"))
            .join(("orders", "o_orderkey"), ("lineitem", "l_orderkey"))
            .join(("supplier", "s_nationkey"), ("nation", "n_nationkey"))
            .build()],
        // Q10: returned item reporting.
        10 => vec![b()
            .rel("customer", 1.0)
            .rel("orders", 0.038)
            .rel("lineitem", 0.25)
            .rel("nation", 1.0)
            .join(("customer", "c_custkey"), ("orders", "o_custkey"))
            .join(("lineitem", "l_orderkey"), ("orders", "o_orderkey"))
            .join(("customer", "c_nationkey"), ("nation", "n_nationkey"))
            .build()],
        // Q11: important stock identification; the HAVING subquery repeats
        // the same 3-way join.
        11 => {
            let block = |builder: JoinGraphBuilder| {
                builder
                    .rel("partsupp", 1.0)
                    .rel("supplier", 1.0)
                    .rel("nation", 0.04)
                    .join(("partsupp", "ps_suppkey"), ("supplier", "s_suppkey"))
                    .join(("supplier", "s_nationkey"), ("nation", "n_nationkey"))
                    .build()
            };
            vec![block(b()), block(b())]
        }
        // Q12: shipping modes and order priority.
        12 => vec![b()
            .rel("orders", 1.0)
            .rel("lineitem", 0.005)
            .join(("orders", "o_orderkey"), ("lineitem", "l_orderkey"))
            .build()],
        // Q13: customer distribution (outer join, modelled as a join).
        13 => vec![b()
            .rel("customer", 1.0)
            .rel("orders", 0.98)
            .join(("customer", "c_custkey"), ("orders", "o_custkey"))
            .build()],
        // Q14: promotion effect.
        14 => vec![b()
            .rel("lineitem", 0.0126)
            .rel("part", 1.0)
            .join(("lineitem", "l_partkey"), ("part", "p_partkey"))
            .build()],
        // Q15: top supplier; the revenue view is its own lineitem block.
        15 => vec![
            b().rel("supplier", 1.0)
                .rel("lineitem", 0.0376)
                .join(("supplier", "s_suppkey"), ("lineitem", "l_suppkey"))
                .build(),
            b().rel("lineitem", 0.0376).build(),
        ],
        // Q16: parts/supplier relationship + NOT IN supplier subquery.
        16 => vec![
            b().rel("partsupp", 1.0)
                .rel("part", 0.1)
                .join(("partsupp", "ps_partkey"), ("part", "p_partkey"))
                .build(),
            b().rel("supplier", 0.001).build(),
        ],
        // Q17: small-quantity-order revenue + correlated avg subquery.
        17 => vec![
            b().rel("lineitem", 1.0)
                .rel("part", 0.001)
                .join(("lineitem", "l_partkey"), ("part", "p_partkey"))
                .build(),
            b().rel("lineitem", 1.0).build(),
        ],
        // Q18: large volume customer + grouped HAVING subquery on lineitem.
        18 => vec![
            b().rel("customer", 1.0)
                .rel("orders", 1.0)
                .rel("lineitem", 1.0)
                .join(("customer", "c_custkey"), ("orders", "o_custkey"))
                .join(("orders", "o_orderkey"), ("lineitem", "l_orderkey"))
                .build(),
            b().rel("lineitem", 1.0).build(),
        ],
        // Q19: discounted revenue (disjunctive predicates).
        19 => vec![b()
            .rel("lineitem", 0.02)
            .rel("part", 0.002)
            .join(("lineitem", "l_partkey"), ("part", "p_partkey"))
            .build()],
        // Q20: potential part promotion; nested subqueries become blocks.
        20 => vec![
            b().rel("supplier", 1.0)
                .rel("nation", 0.04)
                .join(("supplier", "s_nationkey"), ("nation", "n_nationkey"))
                .build(),
            b().rel("partsupp", 1.0)
                .rel("part", 0.011)
                .join(("partsupp", "ps_partkey"), ("part", "p_partkey"))
                .build(),
            b().rel("lineitem", 0.0376).build(),
        ],
        // Q21: suppliers who kept orders waiting; two EXISTS subqueries on
        // lineitem become singleton blocks.
        21 => vec![
            b().rel("supplier", 0.04)
                .rel("lineitem", 0.5)
                .rel("orders", 0.49)
                .rel("nation", 0.04)
                .join(("supplier", "s_suppkey"), ("lineitem", "l_suppkey"))
                .join(("orders", "o_orderkey"), ("lineitem", "l_orderkey"))
                .join(("supplier", "s_nationkey"), ("nation", "n_nationkey"))
                .build(),
            b().rel("lineitem", 1.0).build(),
            b().rel("lineitem", 1.0).build(),
        ],
        // Q22: global sales opportunity; customer main block plus scalar avg
        // and NOT EXISTS subqueries.
        22 => vec![
            b().rel("customer", 0.28).build(),
            b().rel("customer", 0.28).build(),
            b().rel("orders", 1.0).build(),
        ],
        _ => panic!("TPC-H query number must be in 1..=22, got {number}"),
    };
    Query {
        name: format!("Q{number}"),
        blocks,
    }
}

/// All 22 queries in numeric order.
#[must_use]
pub fn all_queries(catalog: &Catalog) -> Vec<Query> {
    (1..=22).map(|n| query(catalog, n)).collect()
}

/// The key–foreign-key join cycle the large-query generator walks:
/// `customer → orders → lineitem → supplier → nation → customer → …`.
/// Each entry is `(table, column joining to the *next* entry's table,
/// next entry's column, filter selectivity)`.
const CHAIN_CYCLE: [(&str, &str, &str, f64); 5] = [
    ("customer", "c_custkey", "o_custkey", 0.25),
    ("orders", "o_orderkey", "l_orderkey", 0.5),
    ("lineitem", "l_suppkey", "s_suppkey", 0.3),
    ("supplier", "s_nationkey", "n_nationkey", 1.0),
    ("nation", "n_nationkey", "c_nationkey", 0.4),
];

/// Join-graph topology of the large-query generator: the shape of the edge
/// set over `n` aliased TPC-H relations. Topology is the main driver of
/// optimizer difficulty — it decides how many connected splits the dynamic
/// programming enumerates and how constrained the randomized walk is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// Path `r_0 – r_1 – … – r_{n−1}` over the key–foreign-key cycle
    /// `customer → orders → lineitem → supplier → nation → customer → …`
    /// (the original `large_join_graph` workload).
    Chain,
    /// Hub-and-spokes: one `customer` hub joined to `n − 1` `orders`
    /// streams on the custkey (a fact-table fan-out).
    Star,
    /// [`Topology::Chain`] over alternating `customer`/`orders` relations
    /// with a closing custkey edge back to relation 0.
    Cycle,
    /// Every pair of relations joined: alternating `customer`/`orders`
    /// relations with custkey edges between all opposite-table pairs and
    /// key self-join edges between all same-table pairs.
    Clique,
}

impl Topology {
    /// All four generated topologies.
    pub const ALL: [Topology; 4] = [
        Topology::Chain,
        Topology::Star,
        Topology::Cycle,
        Topology::Clique,
    ];

    /// Upper-case name used in generated query names (`CHAIN12`, `STAR8`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Topology::Chain => "CHAIN",
            Topology::Star => "STAR",
            Topology::Cycle => "CYCLE",
            Topology::Clique => "CLIQUE",
        }
    }
}

/// Builds a TPC-H-style chain join graph with `n_tables` relations —
/// the large-query workload (8–20 tables) of the randomized optimizer's
/// evaluation, far beyond the paper's biggest from-clause (Q8's 8 tables).
///
/// The chain walks the key–foreign-key cycle `customer → orders → lineitem
/// → supplier → nation → customer → …`, aliasing each repetition
/// (`customer_0`, `orders_1`, …), so every edge is a genuine TPC-H join
/// predicate with System-R selectivity derived from the catalog. The graph
/// is connected, deterministic, and validates against the TPC-H catalog.
/// See [`large_join_graph_with`] for the star/cycle/clique variants.
///
/// # Panics
///
/// Panics if `n_tables` is outside `1..=24` (the dynamic-programming
/// schemes support at most 24 relations, and comparisons need both sides).
#[must_use]
pub fn large_join_graph(catalog: &Catalog, n_tables: usize) -> JoinGraph {
    large_join_graph_with(catalog, n_tables, Topology::Chain)
}

/// Builds a large join graph of the requested [`Topology`].
///
/// All variants use genuine TPC-H join predicates with System-R
/// selectivities from the catalog; star/cycle/clique build on the
/// customer–orders custkey relationship (plus key self-joins between
/// aliases of the same table where the topology demands an edge), so every
/// `n` in range works for every topology. Deterministic and validated.
///
/// # Panics
///
/// Panics if `n_tables` is outside `1..=24`.
#[must_use]
pub fn large_join_graph_with(catalog: &Catalog, n_tables: usize, topology: Topology) -> JoinGraph {
    assert!(
        (1..=24).contains(&n_tables),
        "large join graphs support 1..=24 tables, got {n_tables}"
    );
    match topology {
        Topology::Chain => chain_graph(catalog, n_tables),
        Topology::Star => star_graph(catalog, n_tables),
        Topology::Cycle => cycle_graph(catalog, n_tables),
        Topology::Clique => clique_graph(catalog, n_tables),
    }
}

fn chain_graph(catalog: &Catalog, n_tables: usize) -> JoinGraph {
    let mut b = JoinGraphBuilder::new(catalog);
    let mut aliases: Vec<String> = Vec::with_capacity(n_tables);
    for i in 0..n_tables {
        let (table, _, _, selectivity) = CHAIN_CYCLE[i % CHAIN_CYCLE.len()];
        let alias = format!("{table}_{i}");
        b = b.rel_aliased(table, &alias, selectivity);
        aliases.push(alias);
    }
    for i in 0..n_tables.saturating_sub(1) {
        let (_, left_col, right_col, _) = CHAIN_CYCLE[i % CHAIN_CYCLE.len()];
        b = b.join(
            (aliases[i].as_str(), left_col),
            (aliases[i + 1].as_str(), right_col),
        );
    }
    b.build()
}

/// The customer/orders backbone of the star/cycle/clique variants: relation
/// `i` is `customer_i` (even `i`) or `orders_i` (odd `i`), and any pair of
/// relations admits a genuine join predicate — custkey across tables, the
/// respective key within a table.
fn alternating_rel(i: usize) -> (&'static str, &'static str, f64) {
    if i % 2 == 0 {
        ("customer", "c_custkey", 0.25)
    } else {
        ("orders", "o_custkey", 0.5)
    }
}

fn alternating_backbone(catalog: &Catalog, n_tables: usize) -> (JoinGraphBuilder<'_>, Vec<String>) {
    let mut b = JoinGraphBuilder::new(catalog);
    let mut aliases = Vec::with_capacity(n_tables);
    for i in 0..n_tables {
        let (table, _, selectivity) = alternating_rel(i);
        let alias = format!("{table}_{i}");
        b = b.rel_aliased(table, &alias, selectivity);
        aliases.push(alias);
    }
    (b, aliases)
}

fn backbone_join<'a>(
    b: JoinGraphBuilder<'a>,
    aliases: &[String],
    i: usize,
    j: usize,
) -> JoinGraphBuilder<'a> {
    let (_, col_i, _) = alternating_rel(i);
    let (_, col_j, _) = alternating_rel(j);
    b.join((aliases[i].as_str(), col_i), (aliases[j].as_str(), col_j))
}

fn star_graph(catalog: &Catalog, n_tables: usize) -> JoinGraph {
    let mut b = JoinGraphBuilder::new(catalog);
    let hub = "customer_0".to_owned();
    b = b.rel_aliased("customer", &hub, 0.25);
    for i in 1..n_tables {
        let spoke = format!("orders_{i}");
        b = b.rel_aliased("orders", &spoke, 0.5);
        b = b.join((hub.as_str(), "c_custkey"), (spoke.as_str(), "o_custkey"));
    }
    b.build()
}

fn cycle_graph(catalog: &Catalog, n_tables: usize) -> JoinGraph {
    let (mut b, aliases) = alternating_backbone(catalog, n_tables);
    for i in 0..n_tables.saturating_sub(1) {
        b = backbone_join(b, &aliases, i, i + 1);
    }
    // Close the ring (a 2-ring would duplicate the chain edge).
    if n_tables >= 3 {
        b = backbone_join(b, &aliases, n_tables - 1, 0);
    }
    b.build()
}

fn clique_graph(catalog: &Catalog, n_tables: usize) -> JoinGraph {
    let (mut b, aliases) = alternating_backbone(catalog, n_tables);
    for i in 0..n_tables {
        for j in (i + 1)..n_tables {
            b = backbone_join(b, &aliases, i, j);
        }
    }
    b.build()
}

/// [`large_join_graph`] wrapped as a single-block [`Query`] named
/// `CHAIN<n>`.
///
/// # Panics
///
/// Panics if `n_tables` is outside `1..=24`.
#[must_use]
pub fn large_query(catalog: &Catalog, n_tables: usize) -> Query {
    large_query_with(catalog, n_tables, Topology::Chain)
}

/// [`large_join_graph_with`] wrapped as a single-block [`Query`] named
/// `<TOPOLOGY><n>` (e.g. `STAR12`).
///
/// # Panics
///
/// Panics if `n_tables` is outside `1..=24`.
#[must_use]
pub fn large_query_with(catalog: &Catalog, n_tables: usize, topology: Topology) -> Query {
    Query::single_block(
        format!("{}{n_tables}", topology.name()),
        large_join_graph_with(catalog, n_tables, topology),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_catalog::tpch;

    /// The paper's x-axis annotation: per query (in FIGURE_ORDER) the
    /// maximal number of joined tables in any from-clause.
    const EXPECTED_MAX_TABLES: [usize; 22] = [
        1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2, 3, 3, 3, 4, 4, 5, 6, 6, 6, 8,
    ];

    #[test]
    fn large_join_graphs_validate_and_connect() {
        let cat = tpch::catalog(0.1);
        for n in [1, 2, 8, 12, 16, 20, 24] {
            let g = large_join_graph(&cat, n);
            assert_eq!(g.n_rels(), n, "n = {n}");
            g.validate(&cat).unwrap_or_else(|e| panic!("n = {n}: {e}"));
            assert!(g.fully_connected(), "chain of {n} must be connected");
            assert_eq!(g.edges.len(), n.saturating_sub(1));
        }
        let q = large_query(&cat, 20);
        assert_eq!(q.name, "CHAIN20");
        assert_eq!(q.max_block_size(), 20);
    }

    #[test]
    fn large_join_graph_is_deterministic() {
        let cat = tpch::catalog(1.0);
        assert_eq!(large_join_graph(&cat, 13), large_join_graph(&cat, 13));
    }

    #[test]
    fn topology_variants_validate_and_connect() {
        let cat = tpch::catalog(0.1);
        for topology in Topology::ALL {
            for n in [1usize, 2, 3, 8, 13, 20, 24] {
                let g = large_join_graph_with(&cat, n, topology);
                assert_eq!(g.n_rels(), n, "{topology:?} n = {n}");
                g.validate(&cat)
                    .unwrap_or_else(|e| panic!("{topology:?} n = {n}: {e}"));
                assert!(g.fully_connected(), "{topology:?} of {n} must connect");
                let expected_edges = match topology {
                    Topology::Chain | Topology::Star => n.saturating_sub(1),
                    Topology::Cycle => {
                        if n >= 3 {
                            n
                        } else {
                            n.saturating_sub(1)
                        }
                    }
                    Topology::Clique => n * n.saturating_sub(1) / 2,
                };
                assert_eq!(g.edges.len(), expected_edges, "{topology:?} n = {n}");
            }
        }
    }

    #[test]
    fn topology_variants_are_deterministic_and_distinct() {
        let cat = tpch::catalog(0.1);
        for topology in Topology::ALL {
            assert_eq!(
                large_join_graph_with(&cat, 9, topology),
                large_join_graph_with(&cat, 9, topology)
            );
        }
        // At n = 5 all four edge sets differ.
        let graphs: Vec<JoinGraph> = Topology::ALL
            .iter()
            .map(|&t| large_join_graph_with(&cat, 5, t))
            .collect();
        for i in 0..graphs.len() {
            for j in (i + 1)..graphs.len() {
                assert_ne!(graphs[i], graphs[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn topology_queries_are_named_by_shape() {
        let cat = tpch::catalog(0.1);
        let q = large_query_with(&cat, 12, Topology::Star);
        assert_eq!(q.name, "STAR12");
        assert_eq!(q.max_block_size(), 12);
        assert_eq!(large_query_with(&cat, 7, Topology::Clique).name, "CLIQUE7");
    }

    #[test]
    #[should_panic(expected = "1..=24 tables")]
    fn oversized_large_join_graph_rejected() {
        let cat = tpch::catalog(1.0);
        let _ = large_join_graph(&cat, 25);
    }

    #[test]
    fn all_22_queries_build_and_validate() {
        let cat = tpch::catalog(1.0);
        let queries = all_queries(&cat);
        assert_eq!(queries.len(), 22);
        for q in &queries {
            assert!(!q.blocks.is_empty(), "{} has no blocks", q.name);
            for block in &q.blocks {
                block
                    .validate(&cat)
                    .unwrap_or_else(|e| panic!("{}: {e}", q.name));
            }
        }
    }

    #[test]
    fn figure_order_matches_paper_grouping() {
        let cat = tpch::catalog(1.0);
        for (pos, &qno) in FIGURE_ORDER.iter().enumerate() {
            let q = query(&cat, qno);
            assert_eq!(
                q.max_block_size(),
                EXPECTED_MAX_TABLES[pos],
                "Q{qno} at figure position {pos}"
            );
        }
        // The order is sorted by max block size (ties keep their order).
        let sizes: Vec<usize> = FIGURE_ORDER
            .iter()
            .map(|&qno| query(&cat, qno).max_block_size())
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn figure_order_covers_all_queries_once() {
        let mut seen = [false; 23];
        for &qno in &FIGURE_ORDER {
            assert!(!seen[qno as usize], "Q{qno} repeated");
            seen[qno as usize] = true;
        }
        assert_eq!(seen[1..=22].iter().filter(|s| **s).count(), 22);
    }

    #[test]
    fn q8_is_the_largest_join() {
        let cat = tpch::catalog(1.0);
        let q8 = query(&cat, 8);
        assert_eq!(q8.max_block_size(), 8);
        assert!(q8.blocks[0].fully_connected());
    }

    #[test]
    fn multi_block_queries_follow_postgres_subquery_heuristic() {
        let cat = tpch::catalog(1.0);
        for (qno, expected_blocks) in [(2u8, 2usize), (4, 2), (11, 2), (20, 3), (21, 3), (22, 3)] {
            assert_eq!(
                query(&cat, qno).blocks.len(),
                expected_blocks,
                "Q{qno} block count"
            );
        }
    }

    #[test]
    fn main_blocks_are_connected() {
        // No TPC-H query requires a Cartesian product in its main block.
        let cat = tpch::catalog(1.0);
        for q in all_queries(&cat) {
            assert!(
                q.blocks[0].fully_connected(),
                "{} main block must be connected",
                q.name
            );
        }
    }

    #[test]
    fn aliased_nations_in_q7_map_to_same_table() {
        let cat = tpch::catalog(1.0);
        let q7 = query(&cat, 7);
        let block = &q7.blocks[0];
        let nation = cat.table_by_name("nation").unwrap();
        let aliases: Vec<&str> = block
            .rels
            .iter()
            .filter(|r| r.table == nation)
            .map(|r| r.alias.as_str())
            .collect();
        assert_eq!(aliases, vec!["n1", "n2"]);
    }

    #[test]
    #[should_panic(expected = "1..=22")]
    fn query_23_rejected() {
        let cat = tpch::catalog(1.0);
        let _ = query(&cat, 23);
    }

    #[test]
    fn key_fk_selectivities_derived_from_catalog() {
        let cat = tpch::catalog(1.0);
        let q3 = query(&cat, 3);
        // customer–orders joins on c_custkey (150k distinct): sel = 1/150k.
        let edge = &q3.blocks[0].edges[0];
        assert!((edge.selectivity - 1.0 / 150_000.0).abs() < 1e-12);
    }
}
