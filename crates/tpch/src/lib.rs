//! The TPC-H workload of the paper's evaluation (§5.1, §8).
//!
//! * [`queries`] — the 22 TPC-H queries translated into join-graph blocks
//!   with System-R selectivities, honouring the Postgres heuristic of
//!   optimizing subquery blocks separately (the paper keeps it, §4). The
//!   per-query *maximal from-clause size* reproduces the paper's x-axis
//!   grouping for Figures 5, 9 and 10.
//! * [`testgen`] — the randomized test-case generator: random objective
//!   subsets of fixed cardinality, weights drawn uniformly from `[0, 1]`,
//!   and bounds drawn uniformly from the value domain (bounded-domain
//!   objectives) or as `minimal achievable value × U[1, 2]` (unbounded
//!   objectives), exactly as described in §8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queries;
pub mod testgen;

pub use moqo_catalog::tpch::catalog;
pub use queries::{
    all_queries, large_join_graph, large_join_graph_with, large_query, large_query_with, query,
    Topology, FIGURE_ORDER,
};
pub use testgen::{bounded_test_case, weighted_test_case, TestCase};
