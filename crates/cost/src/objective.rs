//! The nine cost objectives of the extended Postgres cost model (paper §4)
//! and bitmask sets over them.

use std::fmt;

/// Number of objectives supported by the cost model (paper §4: "The extended
/// cost model supports nine objectives").
pub const NUM_OBJECTIVES: usize = 9;

/// A cost objective of the extended Postgres cost model (paper §4).
///
/// Each objective has a fixed index used as the dimension of
/// [`CostVector`](crate::CostVector)s. Cost values are real-valued and
/// non-negative for every objective (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Objective {
    /// Time until all result tuples have been produced (Postgres total cost).
    TotalTime = 0,
    /// Time until the first result tuple is produced (Postgres startup cost).
    StartupTime = 1,
    /// Accumulated I/O work (page reads/writes) over all operators.
    IoLoad = 2,
    /// Accumulated CPU work over all operators.
    CpuLoad = 3,
    /// Number of cores dedicated to the plan (degree-of-parallelism driven).
    UsedCores = 4,
    /// Temporary hard-disc footprint (spilled sort runs / hash partitions).
    DiskFootprint = 5,
    /// Peak buffer-memory footprint.
    BufferFootprint = 6,
    /// Energy consumption (Flach-style model: CPU + I/O + coordination).
    Energy = 7,
    /// Expected fraction of lost result tuples due to sampling, in `[0, 1]`.
    TupleLoss = 8,
}

impl Objective {
    /// All nine objectives in index order.
    pub const ALL: [Objective; NUM_OBJECTIVES] = [
        Objective::TotalTime,
        Objective::StartupTime,
        Objective::IoLoad,
        Objective::CpuLoad,
        Objective::UsedCores,
        Objective::DiskFootprint,
        Objective::BufferFootprint,
        Objective::Energy,
        Objective::TupleLoss,
    ];

    /// The dimension index of this objective inside a cost vector.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Objective for a given dimension index, if in range.
    #[must_use]
    pub fn from_index(index: usize) -> Option<Objective> {
        Objective::ALL.get(index).copied()
    }

    /// Whether the objective's value domain is a-priori bounded to `[0, 1]`
    /// (paper §8: bounds for such objectives are drawn uniformly from the
    /// domain; Observation 3 holds trivially for them).
    #[must_use]
    pub fn has_bounded_domain(self) -> bool {
        matches!(self, Objective::TupleLoss)
    }

    /// Short human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Objective::TotalTime => "total_time",
            Objective::StartupTime => "startup_time",
            Objective::IoLoad => "io_load",
            Objective::CpuLoad => "cpu_load",
            Objective::UsedCores => "used_cores",
            Objective::DiskFootprint => "disk_footprint",
            Objective::BufferFootprint => "buffer_footprint",
            Objective::Energy => "energy",
            Objective::TupleLoss => "tuple_loss",
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of objectives, represented as a bitmask over the nine dimensions.
///
/// Test cases in the paper's evaluation (§8) consider random subsets of the
/// nine implemented objectives; dominance and weighted cost are evaluated on
/// the *selected* dimensions only, while cost vectors always carry all nine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjectiveSet(u16);

impl ObjectiveSet {
    /// The empty objective set.
    #[must_use]
    pub fn empty() -> Self {
        ObjectiveSet(0)
    }

    /// The set of all nine objectives.
    #[must_use]
    pub fn all() -> Self {
        ObjectiveSet((1u16 << NUM_OBJECTIVES) - 1)
    }

    /// A single-objective set (classical query optimization).
    #[must_use]
    pub fn single(objective: Objective) -> Self {
        ObjectiveSet(1u16 << objective.index())
    }

    /// Builds a set from a slice of objectives.
    #[must_use]
    pub fn from_objectives(objectives: &[Objective]) -> Self {
        let mut set = ObjectiveSet::empty();
        for &o in objectives {
            set.insert(o);
        }
        set
    }

    /// Inserts an objective into the set.
    pub fn insert(&mut self, objective: Objective) {
        self.0 |= 1u16 << objective.index();
    }

    /// Removes an objective from the set.
    pub fn remove(&mut self, objective: Objective) {
        self.0 &= !(1u16 << objective.index());
    }

    /// Whether the set contains `objective`.
    #[inline]
    #[must_use]
    pub fn contains(self, objective: Objective) -> bool {
        self.0 & (1u16 << objective.index()) != 0
    }

    /// Number of objectives in the set (the paper's `l = |O|`).
    #[inline]
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the contained objectives in index order.
    pub fn iter(self) -> impl Iterator<Item = Objective> {
        Objective::ALL
            .into_iter()
            .filter(move |o| self.contains(*o))
    }

    /// Whether `self` is a subset of `other`.
    #[must_use]
    pub fn is_subset(self, other: ObjectiveSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: ObjectiveSet) -> ObjectiveSet {
        ObjectiveSet(self.0 | other.0)
    }

    /// Raw bitmask (stable across the process; bit `i` is objective index `i`).
    #[must_use]
    pub fn bits(self) -> u16 {
        self.0
    }
}

impl fmt::Display for ObjectiveSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for o in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{o}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Objective> for ObjectiveSet {
    fn from_iter<T: IntoIterator<Item = Objective>>(iter: T) -> Self {
        let mut set = ObjectiveSet::empty();
        for o in iter {
            set.insert(o);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, o) in Objective::ALL.iter().enumerate() {
            assert_eq!(o.index(), i);
            assert_eq!(Objective::from_index(i), Some(*o));
        }
        assert_eq!(Objective::from_index(NUM_OBJECTIVES), None);
    }

    #[test]
    fn all_set_has_nine_members() {
        assert_eq!(ObjectiveSet::all().len(), NUM_OBJECTIVES);
        assert_eq!(ObjectiveSet::all().iter().count(), NUM_OBJECTIVES);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut set = ObjectiveSet::empty();
        assert!(set.is_empty());
        set.insert(Objective::Energy);
        set.insert(Objective::TotalTime);
        assert_eq!(set.len(), 2);
        assert!(set.contains(Objective::Energy));
        assert!(!set.contains(Objective::IoLoad));
        set.remove(Objective::Energy);
        assert_eq!(set.len(), 1);
        assert!(!set.contains(Objective::Energy));
    }

    #[test]
    fn subset_and_union() {
        let a = ObjectiveSet::from_objectives(&[Objective::TotalTime]);
        let b = ObjectiveSet::from_objectives(&[Objective::TotalTime, Objective::Energy]);
        assert!(a.is_subset(b));
        assert!(!b.is_subset(a));
        assert_eq!(a.union(b), b);
    }

    #[test]
    fn only_tuple_loss_has_bounded_domain() {
        let bounded: Vec<_> = Objective::ALL
            .into_iter()
            .filter(|o| o.has_bounded_domain())
            .collect();
        assert_eq!(bounded, vec![Objective::TupleLoss]);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(Objective::TotalTime.to_string(), "total_time");
        let set = ObjectiveSet::from_objectives(&[Objective::TotalTime, Objective::TupleLoss]);
        assert_eq!(set.to_string(), "{total_time, tuple_loss}");
    }

    #[test]
    fn from_iterator_collects() {
        let set: ObjectiveSet = [Objective::IoLoad, Objective::CpuLoad]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }
}
