//! The discretization function `δ` from the proof of Lemma 2.
//!
//! `δ` maps continuous cost vectors to discrete grid cells such that
//! `δ^o(c) = ⌊log_{α_i}(c^o)⌋` per objective. Two vectors in the same cell
//! mutually approximately dominate each other with precision `α_i`, so the
//! RTA can never store two plans whose cost vectors share a cell — this is
//! what bounds the stored-plan count by `O((n·log_{α_i} m)^{l−1})` and it
//! is asserted as an invariant over real optimizer runs in
//! `moqo-core`'s tests.

use crate::objective::{ObjectiveSet, NUM_OBJECTIVES};
use crate::vector::CostVector;

/// A discrete grid cell: one `⌊log_{α_i}(c^o)⌋` coordinate per selected
/// objective (unselected dimensions are fixed to 0). Zero-cost dimensions
/// get the sentinel `i32::MIN` (the paper treats zero costs separately via
/// Observation 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridCell {
    coords: [i32; NUM_OBJECTIVES],
}

/// Computes `δ(c)` for precision `alpha_i > 1` on the selected objectives.
///
/// # Panics
///
/// Panics if `alpha_i <= 1` (the grid degenerates at exact precision).
#[must_use]
pub fn cell_of(cost: &CostVector, alpha_i: f64, objectives: ObjectiveSet) -> GridCell {
    assert!(alpha_i > 1.0, "the δ grid requires α_i > 1");
    let ln_alpha = alpha_i.ln();
    let mut coords = [0i32; NUM_OBJECTIVES];
    for o in objectives.iter() {
        let v = cost.get(o);
        coords[o.index()] = if v <= 0.0 {
            i32::MIN
        } else {
            (v.ln() / ln_alpha).floor() as i32
        };
    }
    GridCell { coords }
}

/// Whether two cost vectors fall into the same `δ` cell — in which case
/// they mutually approximately dominate each other with precision `α_i`
/// (Lemma 2's key observation).
#[must_use]
pub fn same_cell(a: &CostVector, b: &CostVector, alpha_i: f64, objectives: ObjectiveSet) -> bool {
    cell_of(a, alpha_i, objectives) == cell_of(b, alpha_i, objectives)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::approx_dominates;
    use crate::objective::Objective;

    fn objs() -> ObjectiveSet {
        ObjectiveSet::from_objectives(&[Objective::TotalTime, Objective::BufferFootprint])
    }

    fn v(t: f64, b: f64) -> CostVector {
        CostVector::from_pairs(&[(Objective::TotalTime, t), (Objective::BufferFootprint, b)])
    }

    #[test]
    fn same_cell_implies_mutual_approx_dominance() {
        // Lemma 2: if δ(c1) = δ(c2) then c1 ⪯_α c2 and c2 ⪯_α c1.
        let alpha = 1.5;
        let cases = [
            (v(10.0, 100.0), v(12.0, 110.0)),
            (v(1.0, 1.0), v(1.2, 1.3)),
            (v(1e6, 3.0), v(1.4e6, 3.5)),
        ];
        for (a, b) in cases {
            if same_cell(&a, &b, alpha, objs()) {
                assert!(approx_dominates(&a, &b, alpha, objs()));
                assert!(approx_dominates(&b, &a, alpha, objs()));
            }
        }
        // A pair constructed to share cells: within one α-band per dim.
        let a = v(2.0, 8.0);
        let b = v(2.2, 8.8);
        assert!(same_cell(&a, &b, 1.5, objs()));
        assert!(approx_dominates(&a, &b, 1.5, objs()));
        assert!(approx_dominates(&b, &a, 1.5, objs()));
    }

    #[test]
    fn distant_vectors_are_in_different_cells() {
        assert!(!same_cell(&v(1.0, 1.0), &v(100.0, 1.0), 1.5, objs()));
    }

    #[test]
    fn zero_cost_gets_sentinel_cell() {
        let zero_t = v(0.0, 5.0);
        let tiny_t = v(1e-12, 5.0);
        assert!(!same_cell(&zero_t, &tiny_t, 1.5, objs()));
        assert!(same_cell(&zero_t, &v(0.0, 5.0), 1.5, objs()));
    }

    #[test]
    fn unselected_dimensions_are_ignored() {
        let only_time = ObjectiveSet::single(Objective::TotalTime);
        assert!(same_cell(&v(5.0, 1.0), &v(5.0, 9999.0), 1.5, only_time));
    }

    #[test]
    #[should_panic(expected = "α_i > 1")]
    fn exact_precision_rejected() {
        let _ = cell_of(&v(1.0, 1.0), 1.0, objs());
    }

    #[test]
    fn finer_alpha_means_more_cells() {
        // Count distinct cells of a geometric chain under two precisions.
        let chain: Vec<CostVector> = (0..40).map(|i| v(1.1f64.powi(i), 1.0)).collect();
        let count = |alpha: f64| {
            let mut cells: Vec<GridCell> =
                chain.iter().map(|c| cell_of(c, alpha, objs())).collect();
            cells.dedup();
            cells.len()
        };
        assert!(count(1.05) > count(1.5));
        assert!(count(1.5) > count(4.0));
    }
}
