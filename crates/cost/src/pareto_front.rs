//! Pareto-frontier utilities over raw cost vectors (paper §3, Figure 2).
//!
//! These helpers operate on plain vector collections — independent of any
//! plan representation — and serve as the *oracle* against which the
//! optimizer's incremental pruning structures are tested.

use crate::dominance::{approx_dominates, strictly_dominates};
use crate::objective::ObjectiveSet;
use crate::vector::CostVector;

/// Returns the indices of the Pareto-optimal vectors in `vectors`: those not
/// strictly dominated by any other vector (Definition of Pareto vector, §3).
///
/// Duplicate Pareto vectors are all kept (a Pareto *set* contains at least
/// one cost-equivalent plan per Pareto plan; keeping all equals the frontier
/// plus equivalents and is convenient for testing).
#[must_use]
pub fn pareto_indices(vectors: &[CostVector], objectives: ObjectiveSet) -> Vec<usize> {
    (0..vectors.len())
        .filter(|&i| {
            !vectors
                .iter()
                .any(|other| strictly_dominates(other, &vectors[i], objectives))
        })
        .collect()
}

/// Computes the Pareto frontier (deduplicated on the selected objectives).
#[must_use]
pub fn pareto_frontier(vectors: &[CostVector], objectives: ObjectiveSet) -> Vec<CostVector> {
    let mut frontier: Vec<CostVector> = Vec::new();
    for &i in &pareto_indices(vectors, objectives) {
        let v = vectors[i];
        let duplicate = frontier
            .iter()
            .any(|f| objectives.iter().all(|o| f.get(o) == v.get(o)));
        if !duplicate {
            frontier.push(v);
        }
    }
    frontier
}

/// Whether `candidate_set` is an α-approximate Pareto set for the plan space
/// whose full vector list is `all_vectors` (§3): for every Pareto vector `c*`
/// there must be a candidate `c` with `c ⪯_α c*`.
#[must_use]
pub fn is_approx_pareto_set(
    candidate_set: &[CostVector],
    all_vectors: &[CostVector],
    alpha: f64,
    objectives: ObjectiveSet,
) -> bool {
    let frontier = pareto_frontier(all_vectors, objectives);
    frontier.iter().all(|c_star| {
        candidate_set
            .iter()
            .any(|c| approx_dominates(c, c_star, alpha, objectives))
    })
}

/// The worst-case approximation factor of `candidate_set` against the true
/// frontier of `all_vectors`: the smallest `α` such that the candidate set is
/// an α-approximate Pareto set. Returns `None` for an empty frontier.
#[must_use]
pub fn approximation_factor(
    candidate_set: &[CostVector],
    all_vectors: &[CostVector],
    objectives: ObjectiveSet,
) -> Option<f64> {
    let frontier = pareto_frontier(all_vectors, objectives);
    if frontier.is_empty() {
        return None;
    }
    let mut worst: f64 = 1.0;
    for c_star in &frontier {
        // Smallest α for which *some* candidate α-dominates c_star.
        let mut best_alpha = f64::INFINITY;
        for c in candidate_set {
            let mut alpha: f64 = 1.0;
            let mut feasible = true;
            for o in objectives.iter() {
                let (a, b) = (c.get(o), c_star.get(o));
                if b == 0.0 {
                    if a > 0.0 {
                        feasible = false;
                        break;
                    }
                } else {
                    alpha = alpha.max(a / b);
                }
            }
            if feasible {
                best_alpha = best_alpha.min(alpha);
            }
        }
        worst = worst.max(best_alpha);
    }
    Some(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objective;

    fn objs() -> ObjectiveSet {
        ObjectiveSet::from_objectives(&[Objective::BufferFootprint, Objective::TotalTime])
    }

    fn v(buffer: f64, time: f64) -> CostVector {
        CostVector::from_pairs(&[
            (Objective::BufferFootprint, buffer),
            (Objective::TotalTime, time),
        ])
    }

    #[test]
    fn frontier_of_running_example() {
        let vectors = crate::running_example::plan_cost_vectors();
        let frontier = pareto_frontier(&vectors, objs());
        let mut points: Vec<(f64, f64)> = frontier
            .iter()
            .map(|c| {
                (
                    c.get(Objective::BufferFootprint),
                    c.get(Objective::TotalTime),
                )
            })
            .collect();
        points.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(points, crate::running_example::PARETO_FRONTIER.to_vec());
    }

    #[test]
    fn dominated_point_is_excluded() {
        let vectors = vec![v(1.0, 1.0), v(2.0, 2.0)];
        let frontier = pareto_frontier(&vectors, objs());
        assert_eq!(frontier.len(), 1);
        assert_eq!(frontier[0].get(Objective::TotalTime), 1.0);
    }

    #[test]
    fn incomparable_points_are_both_on_frontier() {
        let vectors = vec![v(1.0, 3.0), v(3.0, 1.0)];
        assert_eq!(pareto_frontier(&vectors, objs()).len(), 2);
    }

    #[test]
    fn duplicates_are_deduplicated_in_frontier() {
        let vectors = vec![v(1.0, 1.0), v(1.0, 1.0)];
        assert_eq!(pareto_frontier(&vectors, objs()).len(), 1);
        // ... but pareto_indices keeps both (cost-equivalent plans).
        assert_eq!(pareto_indices(&vectors, objs()).len(), 2);
    }

    #[test]
    fn full_set_is_one_approximate() {
        let vectors = crate::running_example::plan_cost_vectors();
        assert!(is_approx_pareto_set(&vectors, &vectors, 1.0, objs()));
        assert_eq!(approximation_factor(&vectors, &vectors, objs()), Some(1.0));
    }

    #[test]
    fn thinned_set_needs_larger_alpha() {
        let all = vec![v(1.0, 4.0), v(2.0, 2.0), v(4.0, 1.0)];
        // Keep only the middle point: it 2-approximates both extremes
        // (2 ≤ 2·1 on each coordinate where the extreme is better).
        let candidate = vec![v(2.0, 2.0)];
        assert!(!is_approx_pareto_set(&candidate, &all, 1.5, objs()));
        assert!(is_approx_pareto_set(&candidate, &all, 2.0, objs()));
        let factor = approximation_factor(&candidate, &all, objs()).unwrap();
        assert!((factor - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_has_empty_frontier() {
        assert!(pareto_frontier(&[], objs()).is_empty());
        assert_eq!(approximation_factor(&[], &[], objs()), None);
    }
}
