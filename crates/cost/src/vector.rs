//! Multi-dimensional cost vectors (`c(p)` in the paper's notation).

use std::fmt;
use std::ops::{Add, AddAssign};

use crate::objective::{Objective, ObjectiveSet, NUM_OBJECTIVES};

/// The multi-dimensional cost of a query plan.
///
/// A cost vector always carries all nine dimensions of the extended cost
/// model; algorithms evaluate dominance and weighted cost on a selected
/// [`ObjectiveSet`] only. Cost values are non-negative reals (§3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostVector {
    values: [f64; NUM_OBJECTIVES],
}

impl CostVector {
    /// The all-zero cost vector.
    #[must_use]
    pub fn zero() -> Self {
        CostVector {
            values: [0.0; NUM_OBJECTIVES],
        }
    }

    /// Builds a vector from explicit `(objective, value)` pairs; unspecified
    /// dimensions are zero.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if a value is negative or NaN.
    #[must_use]
    pub fn from_pairs(pairs: &[(Objective, f64)]) -> Self {
        let mut v = CostVector::zero();
        for &(o, value) in pairs {
            v.set(o, value);
        }
        v
    }

    /// Builds a vector from a full array of nine values in objective order.
    #[must_use]
    pub fn from_array(values: [f64; NUM_OBJECTIVES]) -> Self {
        debug_assert!(
            values.iter().all(|v| *v >= 0.0 && !v.is_nan()),
            "cost values must be non-negative reals"
        );
        CostVector { values }
    }

    /// The cost for a given objective (`c^o`).
    #[inline]
    #[must_use]
    pub fn get(&self, objective: Objective) -> f64 {
        self.values[objective.index()]
    }

    /// Sets the cost for a given objective.
    #[inline]
    pub fn set(&mut self, objective: Objective, value: f64) {
        debug_assert!(
            value >= 0.0 && !value.is_nan(),
            "cost values must be non-negative reals; got {value} for {objective}"
        );
        self.values[objective.index()] = value;
    }

    /// Raw access to the nine values in objective order.
    #[must_use]
    pub fn as_array(&self) -> &[f64; NUM_OBJECTIVES] {
        &self.values
    }

    /// Component-wise maximum (used by parallel-branch cost formulas).
    #[must_use]
    pub fn component_max(&self, other: &CostVector) -> CostVector {
        let mut out = [0.0; NUM_OBJECTIVES];
        for ((o, a), b) in out.iter_mut().zip(self.values).zip(other.values) {
            *o = a.max(b);
        }
        CostVector { values: out }
    }

    /// Component-wise minimum.
    #[must_use]
    pub fn component_min(&self, other: &CostVector) -> CostVector {
        let mut out = [0.0; NUM_OBJECTIVES];
        for ((o, a), b) in out.iter_mut().zip(self.values).zip(other.values) {
            *o = a.min(b);
        }
        CostVector { values: out }
    }

    /// Multiplies every component by a non-negative scalar.
    #[must_use]
    pub fn scale(&self, factor: f64) -> CostVector {
        debug_assert!(factor >= 0.0 && !factor.is_nan());
        let mut out = self.values;
        for v in &mut out {
            *v *= factor;
        }
        CostVector { values: out }
    }

    /// Whether every selected component is finite.
    #[must_use]
    pub fn is_finite(&self, objectives: ObjectiveSet) -> bool {
        objectives.iter().all(|o| self.get(o).is_finite())
    }

    /// Approximate equality on all nine dimensions (absolute epsilon), useful
    /// in tests where floating-point formula rearrangements differ.
    #[must_use]
    pub fn approx_eq(&self, other: &CostVector, epsilon: f64) -> bool {
        self.values
            .iter()
            .zip(other.values.iter())
            .all(|(a, b)| (a - b).abs() <= epsilon)
    }

    /// Formats only the selected dimensions, e.g. for frontier dumps.
    #[must_use]
    pub fn display_on(&self, objectives: ObjectiveSet) -> String {
        let mut s = String::from("(");
        let mut first = true;
        for o in objectives.iter() {
            if !first {
                s.push_str(", ");
            }
            first = false;
            s.push_str(&format!("{}={:.4}", o.name(), self.get(o)));
        }
        s.push(')');
        s
    }
}

impl Default for CostVector {
    fn default() -> Self {
        CostVector::zero()
    }
}

impl Add for CostVector {
    type Output = CostVector;

    fn add(self, rhs: CostVector) -> CostVector {
        let mut out = self.values;
        for (a, b) in out.iter_mut().zip(rhs.values.iter()) {
            *a += *b;
        }
        CostVector { values: out }
    }
}

impl AddAssign for CostVector {
    fn add_assign(&mut self, rhs: CostVector) {
        for (a, b) in self.values.iter_mut().zip(rhs.values.iter()) {
            *a += *b;
        }
    }
}

impl fmt::Display for CostVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.3}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v2(t: f64, e: f64) -> CostVector {
        CostVector::from_pairs(&[(Objective::TotalTime, t), (Objective::Energy, e)])
    }

    #[test]
    fn zero_is_all_zero() {
        let z = CostVector::zero();
        for o in Objective::ALL {
            assert_eq!(z.get(o), 0.0);
        }
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = CostVector::zero();
        v.set(Objective::BufferFootprint, 42.5);
        assert_eq!(v.get(Objective::BufferFootprint), 42.5);
        assert_eq!(v.get(Objective::TotalTime), 0.0);
    }

    #[test]
    fn add_is_componentwise() {
        let a = v2(1.0, 2.0);
        let b = v2(3.0, 4.0);
        let c = a + b;
        assert_eq!(c.get(Objective::TotalTime), 4.0);
        assert_eq!(c.get(Objective::Energy), 6.0);
    }

    #[test]
    fn add_assign_matches_add() {
        let a = v2(1.0, 2.0);
        let b = v2(3.0, 4.0);
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
    }

    #[test]
    fn component_max_min() {
        let a = v2(1.0, 5.0);
        let b = v2(3.0, 4.0);
        let mx = a.component_max(&b);
        let mn = a.component_min(&b);
        assert_eq!(mx.get(Objective::TotalTime), 3.0);
        assert_eq!(mx.get(Objective::Energy), 5.0);
        assert_eq!(mn.get(Objective::TotalTime), 1.0);
        assert_eq!(mn.get(Objective::Energy), 4.0);
    }

    #[test]
    fn scale_multiplies_components() {
        let a = v2(2.0, 3.0).scale(1.5);
        assert_eq!(a.get(Objective::TotalTime), 3.0);
        assert_eq!(a.get(Objective::Energy), 4.5);
    }

    #[test]
    fn approx_eq_tolerates_epsilon() {
        let a = v2(1.0, 1.0);
        let b = v2(1.0 + 1e-12, 1.0);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&v2(1.1, 1.0), 1e-9));
    }

    #[test]
    fn display_on_selected_dimensions() {
        let objs = ObjectiveSet::from_objectives(&[Objective::TotalTime]);
        let s = v2(1.0, 2.0).display_on(objs);
        assert!(s.contains("total_time"));
        assert!(!s.contains("energy"));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn negative_cost_panics_in_debug() {
        let mut v = CostVector::zero();
        v.set(Objective::TotalTime, -1.0);
    }
}
