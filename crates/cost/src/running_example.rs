//! The paper's two-dimensional running example (Figures 1, 2, 6 and 8).
//!
//! The paper illustrates weighted and bounded-weighted MOQO with a fixed set
//! of plan cost vectors over the objectives *buffer space* and *time*. The
//! figures show the geometry but not numeric coordinates, so this module
//! fixes a concrete reconstruction with the same qualitative structure:
//!
//! * a four-point Pareto frontier,
//! * a weight vector whose weighted optimum is an interior frontier point,
//! * a bounds vector that excludes the weighted optimum so that the
//!   bounded-weighted optimum is a *different* frontier point (Figure 1(b)).
//!
//! All example coordinates live in the `[0, 4] × [0, 3]` window used by the
//! paper's plots.

use crate::objective::{Objective, ObjectiveSet};
use crate::preference::{Bounds, Preference, Weights};
use crate::vector::CostVector;

/// `(buffer space, time)` coordinates of all example plan cost vectors.
pub const PLAN_POINTS: [(f64, f64); 8] = [
    (0.5, 2.5),
    (1.0, 1.5),
    (1.0, 3.0),
    (1.5, 2.5),
    (2.0, 1.0),
    (2.5, 2.0),
    (3.0, 0.5),
    (3.5, 1.5),
];

/// The Pareto frontier of [`PLAN_POINTS`], sorted by buffer space.
pub const PARETO_FRONTIER: [(f64, f64); 4] = [(0.5, 2.5), (1.0, 1.5), (2.0, 1.0), (3.0, 0.5)];

/// The weighted optimum under [`weights`] — an interior frontier point.
pub const WEIGHTED_OPTIMUM: (f64, f64) = (1.0, 1.5);

/// The bounded-weighted optimum under [`weights`] + [`bounds`]; differs from
/// the weighted optimum because the bounds exclude it (Figure 1(b)).
pub const BOUNDED_OPTIMUM: (f64, f64) = (2.0, 1.0);

/// The objective set of the running example: buffer space and time.
#[must_use]
pub fn objectives() -> ObjectiveSet {
    ObjectiveSet::from_objectives(&[Objective::BufferFootprint, Objective::TotalTime])
}

/// Builds a cost vector from an example `(buffer, time)` point.
#[must_use]
pub fn point(buffer: f64, time: f64) -> CostVector {
    CostVector::from_pairs(&[
        (Objective::BufferFootprint, buffer),
        (Objective::TotalTime, time),
    ])
}

/// All example plan cost vectors.
#[must_use]
pub fn plan_cost_vectors() -> Vec<CostVector> {
    PLAN_POINTS.iter().map(|&(b, t)| point(b, t)).collect()
}

/// The example weight vector (buffer weight 1, time weight 1.5).
#[must_use]
pub fn weights() -> Weights {
    Weights::from_pairs(&[
        (Objective::BufferFootprint, 1.0),
        (Objective::TotalTime, 1.5),
    ])
}

/// The example bounds of Figure 1(b): time ≤ 1.2 and buffer ≤ 2.5, which
/// exclude the weighted optimum `(1.0, 1.5)` and the cheap-time plans with
/// large buffers.
#[must_use]
pub fn bounds() -> Bounds {
    Bounds::from_pairs(&[
        (Objective::TotalTime, 1.2),
        (Objective::BufferFootprint, 2.5),
    ])
}

/// The full bounded-weighted preference of the running example.
#[must_use]
pub fn preference() -> Preference {
    Preference {
        objectives: objectives(),
        weights: weights(),
        bounds: bounds(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::strictly_dominates;

    #[test]
    fn frontier_points_are_not_dominated() {
        let all = plan_cost_vectors();
        for &(b, t) in &PARETO_FRONTIER {
            let c = point(b, t);
            assert!(
                !all.iter().any(|o| strictly_dominates(o, &c, objectives())),
                "({b}, {t}) should be Pareto-optimal"
            );
        }
    }

    #[test]
    fn weighted_optimum_minimizes_weighted_cost() {
        let w = weights();
        let best = plan_cost_vectors()
            .into_iter()
            .min_by(|a, b| w.weighted_cost(a).partial_cmp(&w.weighted_cost(b)).unwrap())
            .unwrap();
        assert_eq!(
            (
                best.get(Objective::BufferFootprint),
                best.get(Objective::TotalTime)
            ),
            WEIGHTED_OPTIMUM
        );
    }

    #[test]
    fn bounds_exclude_weighted_optimum() {
        let b = bounds();
        let opt = point(WEIGHTED_OPTIMUM.0, WEIGHTED_OPTIMUM.1);
        assert!(!b.respected_by(&opt, objectives()));
    }

    #[test]
    fn bounded_optimum_is_best_feasible() {
        let pref = preference();
        let feasible: Vec<_> = plan_cost_vectors()
            .into_iter()
            .filter(|c| pref.respects_bounds(c))
            .collect();
        assert!(!feasible.is_empty());
        let best = feasible
            .into_iter()
            .min_by(|a, b| {
                pref.weighted_cost(a)
                    .partial_cmp(&pref.weighted_cost(b))
                    .unwrap()
            })
            .unwrap();
        assert_eq!(
            (
                best.get(Objective::BufferFootprint),
                best.get(Objective::TotalTime)
            ),
            BOUNDED_OPTIMUM
        );
    }

    #[test]
    fn optima_differ_between_problem_variants() {
        assert_ne!(WEIGHTED_OPTIMUM, BOUNDED_OPTIMUM);
    }
}
