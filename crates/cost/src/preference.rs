//! User preferences: weights, bounds, and their combination (paper §3).

use std::fmt;

use crate::objective::{Objective, ObjectiveSet, NUM_OBJECTIVES};
use crate::vector::CostVector;

/// A vector `W` of non-negative weights, one per objective. The higher the
/// weight on an objective, the higher its relative importance (paper §4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weights {
    values: [f64; NUM_OBJECTIVES],
}

impl Weights {
    /// All-zero weights.
    #[must_use]
    pub fn zero() -> Self {
        Weights {
            values: [0.0; NUM_OBJECTIVES],
        }
    }

    /// Weight 1 on a single objective, 0 elsewhere — classical
    /// single-objective optimization.
    #[must_use]
    pub fn single(objective: Objective) -> Self {
        let mut w = Weights::zero();
        w.set(objective, 1.0);
        w
    }

    /// Builds weights from `(objective, weight)` pairs; unspecified weights
    /// are zero.
    #[must_use]
    pub fn from_pairs(pairs: &[(Objective, f64)]) -> Self {
        let mut w = Weights::zero();
        for &(o, value) in pairs {
            w.set(o, value);
        }
        w
    }

    /// Sets the weight for one objective.
    ///
    /// # Panics
    ///
    /// Debug-asserts the weight is non-negative and not NaN.
    pub fn set(&mut self, objective: Objective, weight: f64) {
        debug_assert!(
            weight >= 0.0 && !weight.is_nan(),
            "weights must be non-negative; got {weight} for {objective}"
        );
        self.values[objective.index()] = weight;
    }

    /// The weight for one objective.
    #[inline]
    #[must_use]
    pub fn get(&self, objective: Objective) -> f64 {
        self.values[objective.index()]
    }

    /// The weighted cost `C_W(c) = Σ_o c^o · W_o` over all objectives with a
    /// non-zero weight.
    #[inline]
    #[must_use]
    pub fn weighted_cost(&self, cost: &CostVector) -> f64 {
        let mut sum = 0.0;
        for (i, w) in self.values.iter().enumerate() {
            if *w > 0.0 {
                sum += w * cost.as_array()[i];
            }
        }
        sum
    }

    /// Objectives with non-zero weight.
    #[must_use]
    pub fn support(&self) -> ObjectiveSet {
        Objective::ALL
            .into_iter()
            .filter(|o| self.get(*o) > 0.0)
            .collect()
    }
}

impl Default for Weights {
    fn default() -> Self {
        Weights::zero()
    }
}

/// A vector `B` of non-negative bounds; `B_o = +∞` means no bound on
/// objective `o`. A cost vector *exceeds* the bounds if it is above the bound
/// in at least one objective and *respects* them otherwise (§3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    values: [f64; NUM_OBJECTIVES],
}

impl Bounds {
    /// No bounds on any objective (all `+∞`).
    #[must_use]
    pub fn unbounded() -> Self {
        Bounds {
            values: [f64::INFINITY; NUM_OBJECTIVES],
        }
    }

    /// Builds bounds from `(objective, bound)` pairs; unspecified objectives
    /// stay unbounded.
    #[must_use]
    pub fn from_pairs(pairs: &[(Objective, f64)]) -> Self {
        let mut b = Bounds::unbounded();
        for &(o, value) in pairs {
            b.set(o, value);
        }
        b
    }

    /// Sets the bound for one objective.
    ///
    /// # Panics
    ///
    /// Debug-asserts the bound is non-negative and not NaN.
    pub fn set(&mut self, objective: Objective, bound: f64) {
        debug_assert!(
            bound >= 0.0 && !bound.is_nan(),
            "bounds must be non-negative; got {bound} for {objective}"
        );
        self.values[objective.index()] = bound;
    }

    /// The bound for one objective (`+∞` when unbounded).
    #[inline]
    #[must_use]
    pub fn get(&self, objective: Objective) -> f64 {
        self.values[objective.index()]
    }

    /// Whether `cost` respects the bounds on the selected objectives
    /// (`c ⪯ B` restricted to `objectives`).
    #[inline]
    #[must_use]
    pub fn respected_by(&self, cost: &CostVector, objectives: ObjectiveSet) -> bool {
        objectives.iter().all(|o| cost.get(o) <= self.get(o))
    }

    /// Whether `cost` respects the bounds *relaxed by factor `α`*
    /// (`c ⪯ α·B`), as used by the IRA's stopping condition (Algorithm 3).
    #[inline]
    #[must_use]
    pub fn relaxed_respected_by(
        &self,
        cost: &CostVector,
        alpha: f64,
        objectives: ObjectiveSet,
    ) -> bool {
        debug_assert!(alpha >= 1.0);
        objectives
            .iter()
            .all(|o| cost.get(o) <= alpha * self.get(o))
    }

    /// Objectives with a finite bound.
    #[must_use]
    pub fn bounded_objectives(&self) -> ObjectiveSet {
        Objective::ALL
            .into_iter()
            .filter(|o| self.get(*o).is_finite())
            .collect()
    }

    /// Whether no objective is bounded.
    #[must_use]
    pub fn is_unbounded(&self) -> bool {
        self.bounded_objectives().is_empty()
    }
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds::unbounded()
    }
}

/// A full user preference: the objectives considered by the optimizer, the
/// weights, and the bounds. This is the `⟨W, B⟩` part of a bounded-weighted
/// MOQO instance `I = ⟨Q, W, B⟩` (Definition 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Preference {
    /// Objectives the optimizer considers (the instance's `O`).
    pub objectives: ObjectiveSet,
    /// Relative importance per objective.
    pub weights: Weights,
    /// Hard cost limits per objective (`+∞` = unbounded).
    pub bounds: Bounds,
}

impl Preference {
    /// Preference over an explicit objective set with zero weights and no
    /// bounds; use [`Preference::weight`]/[`Preference::bound`] to refine.
    #[must_use]
    pub fn over(objectives: ObjectiveSet) -> Self {
        Preference {
            objectives,
            weights: Weights::zero(),
            bounds: Bounds::unbounded(),
        }
    }

    /// Classical single-objective preference: minimize one objective.
    #[must_use]
    pub fn minimize(objective: Objective) -> Self {
        Preference {
            objectives: ObjectiveSet::single(objective),
            weights: Weights::single(objective),
            bounds: Bounds::unbounded(),
        }
    }

    /// Sets a weight (builder style); the objective is added to the
    /// considered set if missing.
    #[must_use]
    pub fn weight(mut self, objective: Objective, weight: f64) -> Self {
        self.objectives.insert(objective);
        self.weights.set(objective, weight);
        self
    }

    /// Sets a bound (builder style); the objective is added to the considered
    /// set if missing.
    #[must_use]
    pub fn bound(mut self, objective: Objective, bound: f64) -> Self {
        self.objectives.insert(objective);
        self.bounds.set(objective, bound);
        self
    }

    /// The weighted cost of `cost` under these weights.
    #[inline]
    #[must_use]
    pub fn weighted_cost(&self, cost: &CostVector) -> f64 {
        self.weights.weighted_cost(cost)
    }

    /// Whether `cost` respects the bounds on the considered objectives.
    #[inline]
    #[must_use]
    pub fn respects_bounds(&self, cost: &CostVector) -> bool {
        self.bounds.respected_by(cost, self.objectives)
    }

    /// Whether any bound is set on a considered objective (i.e. the instance
    /// is bounded-weighted rather than plain weighted MOQO).
    #[must_use]
    pub fn is_bounded(&self) -> bool {
        self.objectives
            .iter()
            .any(|o| self.bounds.get(o).is_finite())
    }
}

impl fmt::Display for Preference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "objectives={} weights=[", self.objectives)?;
        let mut first = true;
        for o in self.objectives.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{}={:.3}", o.name(), self.weights.get(o))?;
        }
        write!(f, "] bounds=[")?;
        first = true;
        for o in self.objectives.iter() {
            let b = self.bounds.get(o);
            if b.is_finite() {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{}≤{b:.3}", o.name())?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_cost_is_dot_product() {
        let w = Weights::from_pairs(&[(Objective::TotalTime, 1.0), (Objective::Energy, 2.0)]);
        let c = CostVector::from_pairs(&[(Objective::TotalTime, 7.0), (Objective::Energy, 3.0)]);
        assert_eq!(w.weighted_cost(&c), 13.0);
    }

    #[test]
    fn zero_weights_give_zero_cost() {
        let c = CostVector::from_pairs(&[(Objective::TotalTime, 7.0)]);
        assert_eq!(Weights::zero().weighted_cost(&c), 0.0);
    }

    #[test]
    fn support_lists_nonzero_weights() {
        let w = Weights::from_pairs(&[(Objective::IoLoad, 0.5)]);
        assert_eq!(w.support(), ObjectiveSet::single(Objective::IoLoad));
    }

    #[test]
    fn bounds_respected() {
        let objs = ObjectiveSet::from_objectives(&[Objective::TotalTime, Objective::TupleLoss]);
        let b = Bounds::from_pairs(&[(Objective::TupleLoss, 0.0)]);
        let no_loss = CostVector::from_pairs(&[(Objective::TotalTime, 5.0)]);
        let loss =
            CostVector::from_pairs(&[(Objective::TotalTime, 1.0), (Objective::TupleLoss, 0.01)]);
        assert!(b.respected_by(&no_loss, objs));
        assert!(!b.respected_by(&loss, objs));
    }

    #[test]
    fn relaxed_bounds_allow_alpha_violation() {
        let objs = ObjectiveSet::single(Objective::TotalTime);
        let b = Bounds::from_pairs(&[(Objective::TotalTime, 10.0)]);
        let c = CostVector::from_pairs(&[(Objective::TotalTime, 14.0)]);
        assert!(!b.respected_by(&c, objs));
        assert!(b.relaxed_respected_by(&c, 1.5, objs));
        assert!(!b.relaxed_respected_by(&c, 1.2, objs));
    }

    #[test]
    fn unbounded_bounds_respect_everything() {
        let b = Bounds::unbounded();
        assert!(b.is_unbounded());
        let huge = CostVector::from_pairs(&[(Objective::TotalTime, 1e300)]);
        assert!(b.respected_by(&huge, ObjectiveSet::all()));
    }

    #[test]
    fn preference_builder() {
        let p = Preference::over(ObjectiveSet::empty())
            .weight(Objective::TotalTime, 1.0)
            .bound(Objective::TupleLoss, 0.0);
        assert!(p.objectives.contains(Objective::TotalTime));
        assert!(p.objectives.contains(Objective::TupleLoss));
        assert!(p.is_bounded());
        let q = Preference::minimize(Objective::TotalTime);
        assert!(!q.is_bounded());
        assert_eq!(q.weights.get(Objective::TotalTime), 1.0);
    }

    #[test]
    fn preference_display_mentions_bounds() {
        let p = Preference::over(ObjectiveSet::empty())
            .weight(Objective::TotalTime, 1.0)
            .bound(Objective::StartupTime, 3.0);
        let s = p.to_string();
        assert!(s.contains("startup_time≤3.000"), "{s}");
    }
}
