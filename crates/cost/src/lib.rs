//! Cost-vector algebra for many-objective query optimization (MOQO).
//!
//! This crate implements the formal model of Section 3 of
//! *Trummer & Koch, "Approximation Schemes for Many-Objective Query
//! Optimization", SIGMOD 2014*:
//!
//! * the nine cost [`Objective`]s of the extended Postgres cost model (§4),
//! * multi-dimensional [`CostVector`]s with the three dominance relations —
//!   dominance `⪯`, strict dominance `≺` and approximate dominance `⪯_α`
//!   (Definition of §3),
//! * user preferences: non-negative [`Weights`] and per-objective
//!   [`Bounds`], combined into a [`Preference`],
//! * the weighted cost `C_W(c) = Σ_o c^o · W_o` and the relative cost `ρ`.
//!
//! The crate is deliberately free of any optimizer or plan logic so that the
//! algebra can be property-tested in isolation (partial-order laws, the
//! relationship between the three dominance relations, and the principle of
//! near-optimality for the {sum, max, min, ×const} formula combinators).
//!
//! # Example
//!
//! Example 1 of the paper: a weighted sum over (time, energy) does **not**
//! satisfy the single-objective principle of optimality.
//!
//! ```
//! use moqo_cost::{CostVector, Objective, ObjectiveSet, Weights};
//!
//! let objs = ObjectiveSet::from_objectives(&[Objective::TotalTime, Objective::Energy]);
//! // Weight 1 for time, 2 for energy.
//! let mut w = Weights::zero();
//! w.set(Objective::TotalTime, 1.0);
//! w.set(Objective::Energy, 2.0);
//!
//! let p1 = CostVector::from_pairs(&[(Objective::TotalTime, 7.0), (Objective::Energy, 1.0)]);
//! let p1_alt = CostVector::from_pairs(&[(Objective::TotalTime, 1.0), (Objective::Energy, 3.0)]);
//! // p1_alt has *better* weighted cost than p1 ...
//! assert!(w.weighted_cost(&p1_alt) < w.weighted_cost(&p1));
//!
//! let p2 = CostVector::from_pairs(&[(Objective::TotalTime, 6.0), (Objective::Energy, 2.0)]);
//! // ... but combining in parallel (time = max, energy = sum) the full plan
//! // gets *worse*: (7,3) -> weighted 13 versus (6,5) -> weighted 16.
//! let combine = |a: &CostVector, b: &CostVector| {
//!     let mut c = CostVector::zero();
//!     c.set(Objective::TotalTime,
//!           a.get(Objective::TotalTime).max(b.get(Objective::TotalTime)));
//!     c.set(Objective::Energy, a.get(Objective::Energy) + b.get(Objective::Energy));
//!     c
//! };
//! let plan = combine(&p1, &p2);
//! let plan_alt = combine(&p1_alt, &p2);
//! assert_eq!(w.weighted_cost(&plan), 13.0);
//! assert_eq!(w.weighted_cost(&plan_alt), 16.0);
//! # let _ = objs;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod objective;
mod preference;
mod signature;
mod vector;

pub mod dominance;
pub mod grid;
pub mod pareto_front;
pub mod running_example;

// Convenience re-exports: `moqo_cost::dominance` is the canonical home of
// the relations; the flat paths below are aliases for it.
pub use dominance::{
    approx_dominates, approx_dominates_with_props, dominates, dominates_with_props,
    strictly_dominates, PropsKey,
};
pub use objective::{Objective, ObjectiveSet, NUM_OBJECTIVES};
pub use preference::{Bounds, Preference, Weights};
pub use signature::PreferenceSignature;
pub use vector::CostVector;

/// Relative cost `ρ_I(p)` of a plan with weighted cost `cost` against the
/// optimal weighted cost `opt` (Definition 3).
///
/// Both costs must already be the *weighted* costs `C_W(c(p))`. When the
/// optimum is zero the relative cost is defined as 1 if the plan cost is also
/// zero and `+∞` otherwise (the paper's cost domain is non-negative, so a
/// zero optimum can only be matched by a zero plan cost).
#[must_use]
pub fn relative_cost(cost: f64, opt: f64) -> f64 {
    debug_assert!(cost >= 0.0 && opt >= 0.0, "costs must be non-negative");
    if opt == 0.0 {
        if cost == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        cost / opt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_cost_of_optimum_is_one() {
        assert_eq!(relative_cost(10.0, 10.0), 1.0);
    }

    #[test]
    fn relative_cost_zero_optimum() {
        assert_eq!(relative_cost(0.0, 0.0), 1.0);
        assert_eq!(relative_cost(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn relative_cost_ratio() {
        assert!((relative_cost(15.0, 10.0) - 1.5).abs() < 1e-12);
    }
}
