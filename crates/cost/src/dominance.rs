//! The three dominance relations of the paper's formal model (§3).
//!
//! * `c1 ⪯ c2` — [`dominates`]: `c1` has lower-or-equal cost in *every*
//!   selected objective.
//! * `c1 ≺ c2` — [`strictly_dominates`]: `c1 ⪯ c2` and the vectors are not
//!   equivalent on the selected objectives.
//! * `c1 ⪯_α c2` — [`approx_dominates`]: the cost of `c1` is higher than the
//!   one of `c2` by at most factor `α` in every selected objective, i.e.
//!   `∀o: c1^o ≤ c2^o · α`.
//!
//! Note the direction of approximate dominance: `c1` may be *worse* than `c2`
//! by up to factor `α` and still approximately dominate it — with `α = 1` the
//! relation coincides with plain dominance.

use crate::objective::ObjectiveSet;
use crate::vector::CostVector;

/// `c1 ⪯ c2`: `c1` has lower or equivalent cost than `c2` in every selected
/// objective.
#[inline]
#[must_use]
pub fn dominates(c1: &CostVector, c2: &CostVector, objectives: ObjectiveSet) -> bool {
    objectives.iter().all(|o| c1.get(o) <= c2.get(o))
}

/// `c1 ≺ c2`: `c1 ⪯ c2` and the two vectors differ on at least one selected
/// objective.
#[inline]
#[must_use]
pub fn strictly_dominates(c1: &CostVector, c2: &CostVector, objectives: ObjectiveSet) -> bool {
    let mut strictly_better = false;
    for o in objectives.iter() {
        let (a, b) = (c1.get(o), c2.get(o));
        if a > b {
            return false;
        }
        if a < b {
            strictly_better = true;
        }
    }
    strictly_better
}

/// `c1 ⪯_α c2`: `c1^o ≤ α · c2^o` for every selected objective `o`.
///
/// # Panics
///
/// Debug-asserts `α ≥ 1` (the paper only defines approximate dominance for
/// `α ≥ 1`).
#[inline]
#[must_use]
pub fn approx_dominates(
    c1: &CostVector,
    c2: &CostVector,
    alpha: f64,
    objectives: ObjectiveSet,
) -> bool {
    debug_assert!(alpha >= 1.0, "approximate dominance requires α ≥ 1");
    objectives.iter().all(|o| c1.get(o) <= alpha * c2.get(o))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objective;

    fn objs2() -> ObjectiveSet {
        ObjectiveSet::from_objectives(&[Objective::TotalTime, Objective::BufferFootprint])
    }

    fn v(t: f64, b: f64) -> CostVector {
        CostVector::from_pairs(&[(Objective::TotalTime, t), (Objective::BufferFootprint, b)])
    }

    #[test]
    fn dominance_is_reflexive() {
        let a = v(1.0, 2.0);
        assert!(dominates(&a, &a, objs2()));
        assert!(!strictly_dominates(&a, &a, objs2()));
    }

    #[test]
    fn dominance_requires_all_dimensions() {
        assert!(dominates(&v(1.0, 2.0), &v(1.0, 3.0), objs2()));
        assert!(!dominates(&v(1.0, 4.0), &v(1.0, 3.0), objs2()));
        assert!(!dominates(&v(2.0, 2.0), &v(1.0, 3.0), objs2()));
    }

    #[test]
    fn strict_dominance_needs_one_strict_dimension() {
        assert!(strictly_dominates(&v(1.0, 2.0), &v(1.0, 3.0), objs2()));
        assert!(!strictly_dominates(&v(1.0, 3.0), &v(1.0, 3.0), objs2()));
    }

    #[test]
    fn approx_dominance_with_alpha_one_is_dominance() {
        let a = v(1.0, 3.0);
        let b = v(1.0, 2.9);
        assert_eq!(
            approx_dominates(&a, &b, 1.0, objs2()),
            dominates(&a, &b, objs2())
        );
        assert!(approx_dominates(&b, &a, 1.0, objs2()));
    }

    #[test]
    fn approx_dominance_allows_alpha_slack() {
        // 1.5-approximate dominance: c1 may be up to 50% worse per dimension.
        assert!(approx_dominates(&v(1.4, 2.8), &v(1.0, 2.0), 1.5, objs2()));
        assert!(!approx_dominates(&v(1.6, 2.0), &v(1.0, 2.0), 1.5, objs2()));
    }

    #[test]
    fn unselected_dimensions_are_ignored() {
        let only_time = ObjectiveSet::single(Objective::TotalTime);
        // Worse buffer cost is irrelevant when only time is selected.
        assert!(dominates(&v(1.0, 99.0), &v(2.0, 1.0), only_time));
    }

    #[test]
    fn zero_cost_edge_case() {
        // c2 with a zero component: only a zero component of c1 can
        // approximately dominate it.
        let z = v(0.0, 1.0);
        assert!(approx_dominates(&v(0.0, 1.0), &z, 2.0, objs2()));
        assert!(!approx_dominates(&v(0.1, 1.0), &z, 2.0, objs2()));
    }

    #[test]
    fn empty_objective_set_everything_dominates() {
        let none = ObjectiveSet::empty();
        assert!(dominates(&v(9.0, 9.0), &v(1.0, 1.0), none));
        assert!(!strictly_dominates(&v(9.0, 9.0), &v(1.0, 1.0), none));
    }
}
