//! The three dominance relations of the paper's formal model (§3).
//!
//! * `c1 ⪯ c2` — [`dominates`]: `c1` has lower-or-equal cost in *every*
//!   selected objective.
//! * `c1 ≺ c2` — [`strictly_dominates`]: `c1 ⪯ c2` and the vectors are not
//!   equivalent on the selected objectives.
//! * `c1 ⪯_α c2` — [`approx_dominates`]: the cost of `c1` is higher than the
//!   one of `c2` by at most factor `α` in every selected objective, i.e.
//!   `∀o: c1^o ≤ c2^o · α`.
//!
//! Note the direction of approximate dominance: `c1` may be *worse* than `c2`
//! by up to factor `α` and still approximately dominate it — with `α = 1` the
//! relation coincides with plain dominance.
//!
//! ## Props-aware dominance
//!
//! The plain relations compare *cost vectors* only. That is sound exactly
//! when the selected cost components determine every downstream cost — the
//! principle of near-optimality (§6.1) treats cardinality-derived
//! quantities as constants per table set. Sampling scans break that
//! assumption: plan cardinality then varies *within* a table set, feeds
//! every parent operator's cost formula, and — when `TupleLoss` is not a
//! selected objective — is invisible to the cost vector. A plan that is
//! cost-dominated but produces fewer rows may still lead to the cheapest
//! complete plan, so discarding it loses frontier points.
//!
//! [`dominates_with_props`] and [`approx_dominates_with_props`] close the
//! leak: they additionally require the dominator's physical properties
//! ([`PropsKey`]) to *cover* the dominated plan's, i.e. be at least as good
//! for every possible parent operator.

use crate::objective::ObjectiveSet;
use crate::vector::CostVector;

/// The physical plan properties that can influence downstream operator
/// costs beyond the cost vector itself: output cardinality, plus an opaque
/// *interest* tag for order-like properties a parent operator might
/// exploit. Cost-layer code never interprets the tag; producers (the plan
/// layer) encode their sort orders into it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropsKey {
    /// Estimated output row count; fewer rows never cost a parent more.
    pub rows: f64,
    /// Opaque interest tag. [`PropsKey::NO_INTEREST`] marks a plan with no
    /// exploitable property; any tag covers it. Distinct non-trivial tags
    /// are mutually incomparable (neither covers the other).
    pub interest: u64,
}

impl PropsKey {
    /// The interest tag of a plan with no exploitable physical property
    /// (e.g. an unsorted output). Every tag covers it.
    pub const NO_INTEREST: u64 = 0;

    /// Exact class identity of this key: the raw bits of `rows` plus the
    /// interest tag. Plans whose keys share a class id have *bitwise equal*
    /// props keys, so one class-level [`PropsKey::covers`] test decides
    /// coverage for every member at once — the invariant behind the
    /// two-level (class → sub-front) frontier structure.
    #[must_use]
    pub fn class_id(&self) -> PropsClassId {
        PropsClassId {
            rows_bits: self.rows.to_bits(),
            interest: self.interest,
        }
    }

    /// Reconstructs the (bitwise exact) props key shared by every member of
    /// a class.
    #[must_use]
    pub fn from_class(class: PropsClassId) -> Self {
        PropsKey {
            rows: f64::from_bits(class.rows_bits),
            interest: class.interest,
        }
    }

    /// Relative tolerance of the row comparison in [`PropsKey::covers`].
    /// Cardinality estimates for the same table set agree only up to
    /// floating-point association noise (different join orders multiply
    /// the same selectivities in different orders, wobbling the last few
    /// ulps), which is many orders of magnitude below any real cardinality
    /// distinction; without the tolerance, props-aware pruning would
    /// partition identical-cardinality plans into spurious classes and
    /// diverge from cost-only pruning even where no sampling is involved.
    pub const ROWS_RELATIVE_TOLERANCE: f64 = 1e-9;

    /// A key with `rows` and no interesting property.
    #[must_use]
    pub fn rows_only(rows: f64) -> Self {
        PropsKey {
            rows,
            interest: Self::NO_INTEREST,
        }
    }

    /// Whether `self` is at least as good as `other` for every possible
    /// parent operator: no more rows (up to
    /// [`PropsKey::ROWS_RELATIVE_TOLERANCE`]), and an interest tag that is
    /// equal or subsumes a trivial one. This is the side condition of
    /// [`dominates_with_props`].
    #[must_use]
    pub fn covers(&self, other: &PropsKey) -> bool {
        self.rows <= other.rows * (1.0 + Self::ROWS_RELATIVE_TOLERANCE)
            && (self.interest == other.interest || other.interest == Self::NO_INTEREST)
    }
}

/// The exact identity of a props class: every plan whose [`PropsKey`] has
/// these row bits and interest tag. Hash/Eq are exact by construction — the
/// [`PropsKey::ROWS_RELATIVE_TOLERANCE`] applies to *coverage between*
/// classes, never to class membership.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PropsClassId {
    /// `rows.to_bits()` of every member.
    pub rows_bits: u64,
    /// Interest tag of every member.
    pub interest: u64,
}

/// Default multiplicative cell ratio of the dominance grid when the pruning
/// precision is exactly 1 (the grid then only accelerates duplicate and
/// near-duplicate detection; every bucket hit is verified against the exact
/// relation, so the ratio is a tuning knob, not a soundness parameter).
pub const GRID_DEFAULT_RATIO: f64 = 2.0;

/// Per-dimension cell ratio of the α-grid over `k` selected objectives:
/// `ρ = α^(1/k)` per the ε-Pareto grid construction (Papadimitriou &
/// Yannakakis; the paper's §6 approximation argument quantizes cost space
/// the same way), or [`GRID_DEFAULT_RATIO`] for `α = 1`. With
/// `ρ = α^(1/k)` two vectors in the same cell are within factor `ρ ≤ α`
/// per dimension, so any cell occupant α-dominates a same-cell candidate —
/// callers still verify each bucket hit against the exact predicate, which
/// keeps the index sound for `α = 1` and immune to hash collisions.
///
/// # Panics
///
/// Debug-asserts `α ≥ 1` and `k ≥ 1`.
#[must_use]
pub fn grid_cell_ratio(alpha: f64, k: usize) -> f64 {
    debug_assert!(alpha >= 1.0 && k >= 1);
    if alpha > 1.0 {
        alpha.powf(1.0 / k as f64)
    } else {
        GRID_DEFAULT_RATIO
    }
}

/// Bit shift realizing cell ratio `ρ` as an exponent/mantissa truncation:
/// the largest `s` such that dropping the low `s` bits of an IEEE-754
/// `f64` groups positive components into cells of per-dimension ratio at
/// most `1 + 2^(s−52) ≤ ρ` (mantissa `m ∈ [1, 2)`, cell span `2^(s−52)·m`
/// octaves at worst `m = 1`). `s = 52` is the pure-exponent grid (ratio-2
/// cells); finer ratios keep high mantissa bits. The truncation is
/// monotone on positive floats, so same-cell still implies the
/// [`grid_cell_ratio`] bound — without a logarithm per probed dimension.
///
/// # Panics
///
/// Debug-asserts `ρ > 1`.
#[must_use]
pub fn grid_cell_shift(ratio: f64) -> u32 {
    debug_assert!(ratio > 1.0);
    let s = (52.0 + (ratio - 1.0).log2()).floor();
    if s >= 52.0 {
        52
    } else if s <= 0.0 {
        0
    } else {
        s as u32
    }
}

/// Grid cell coordinate of one cost component: its bit pattern with the
/// low `shift` bits dropped. For the positive finite costs the optimizer
/// produces this is the multiplicative `ρ`-cell of [`grid_cell_shift`];
/// zeros, infinities and (never expected) negatives each land in stable
/// cells of their own — harmlessly, since every bucket hit is verified
/// against the exact dominance relation.
#[inline]
#[must_use]
pub fn grid_cell_coord(v: f64, shift: u32) -> u64 {
    v.to_bits() >> shift
}

/// Folds per-dimension cell coordinates into one 64-bit bucket key
/// (Fibonacci-style multiplicative mixing). Collisions merely co-locate
/// unrelated cells in one bucket; they cannot produce wrong results because
/// every bucket member is verified against the exact dominance relation.
#[must_use]
pub fn grid_cell_key(coords: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for c in coords {
        h ^= c;
        h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(29);
    }
    h
}

/// `c1 ⪯ c2` *and* `k1` covers `k2`: the props-aware dominance relation
/// behind the optimizer's `PruneMode::PropsAware`. Sound even when plan
/// cardinality varies within a table set (sampling scans) and is not
/// reflected in the selected objectives.
#[inline]
#[must_use]
pub fn dominates_with_props(
    c1: &CostVector,
    k1: &PropsKey,
    c2: &CostVector,
    k2: &PropsKey,
    objectives: ObjectiveSet,
) -> bool {
    k1.covers(k2) && dominates(c1, c2, objectives)
}

/// `c1 ⪯_α c2` *and* `k1` covers `k2` — the approximate counterpart of
/// [`dominates_with_props`]. Note the props side condition is exact: α
/// slack applies to costs only, never to cardinality, because parent costs
/// can grow without bound in child rows.
#[inline]
#[must_use]
pub fn approx_dominates_with_props(
    c1: &CostVector,
    k1: &PropsKey,
    c2: &CostVector,
    k2: &PropsKey,
    alpha: f64,
    objectives: ObjectiveSet,
) -> bool {
    k1.covers(k2) && approx_dominates(c1, c2, alpha, objectives)
}

/// `c1 ⪯ c2`: `c1` has lower or equivalent cost than `c2` in every selected
/// objective.
#[inline]
#[must_use]
pub fn dominates(c1: &CostVector, c2: &CostVector, objectives: ObjectiveSet) -> bool {
    objectives.iter().all(|o| c1.get(o) <= c2.get(o))
}

/// `c1 ≺ c2`: `c1 ⪯ c2` and the two vectors differ on at least one selected
/// objective.
#[inline]
#[must_use]
pub fn strictly_dominates(c1: &CostVector, c2: &CostVector, objectives: ObjectiveSet) -> bool {
    let mut strictly_better = false;
    for o in objectives.iter() {
        let (a, b) = (c1.get(o), c2.get(o));
        if a > b {
            return false;
        }
        if a < b {
            strictly_better = true;
        }
    }
    strictly_better
}

/// `c1 ⪯_α c2`: `c1^o ≤ α · c2^o` for every selected objective `o`.
///
/// # Panics
///
/// Debug-asserts `α ≥ 1` (the paper only defines approximate dominance for
/// `α ≥ 1`).
#[inline]
#[must_use]
pub fn approx_dominates(
    c1: &CostVector,
    c2: &CostVector,
    alpha: f64,
    objectives: ObjectiveSet,
) -> bool {
    debug_assert!(alpha >= 1.0, "approximate dominance requires α ≥ 1");
    objectives.iter().all(|o| c1.get(o) <= alpha * c2.get(o))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objective;

    fn objs2() -> ObjectiveSet {
        ObjectiveSet::from_objectives(&[Objective::TotalTime, Objective::BufferFootprint])
    }

    fn v(t: f64, b: f64) -> CostVector {
        CostVector::from_pairs(&[(Objective::TotalTime, t), (Objective::BufferFootprint, b)])
    }

    #[test]
    fn dominance_is_reflexive() {
        let a = v(1.0, 2.0);
        assert!(dominates(&a, &a, objs2()));
        assert!(!strictly_dominates(&a, &a, objs2()));
    }

    #[test]
    fn dominance_requires_all_dimensions() {
        assert!(dominates(&v(1.0, 2.0), &v(1.0, 3.0), objs2()));
        assert!(!dominates(&v(1.0, 4.0), &v(1.0, 3.0), objs2()));
        assert!(!dominates(&v(2.0, 2.0), &v(1.0, 3.0), objs2()));
    }

    #[test]
    fn strict_dominance_needs_one_strict_dimension() {
        assert!(strictly_dominates(&v(1.0, 2.0), &v(1.0, 3.0), objs2()));
        assert!(!strictly_dominates(&v(1.0, 3.0), &v(1.0, 3.0), objs2()));
    }

    #[test]
    fn approx_dominance_with_alpha_one_is_dominance() {
        let a = v(1.0, 3.0);
        let b = v(1.0, 2.9);
        assert_eq!(
            approx_dominates(&a, &b, 1.0, objs2()),
            dominates(&a, &b, objs2())
        );
        assert!(approx_dominates(&b, &a, 1.0, objs2()));
    }

    #[test]
    fn approx_dominance_allows_alpha_slack() {
        // 1.5-approximate dominance: c1 may be up to 50% worse per dimension.
        assert!(approx_dominates(&v(1.4, 2.8), &v(1.0, 2.0), 1.5, objs2()));
        assert!(!approx_dominates(&v(1.6, 2.0), &v(1.0, 2.0), 1.5, objs2()));
    }

    #[test]
    fn unselected_dimensions_are_ignored() {
        let only_time = ObjectiveSet::single(Objective::TotalTime);
        // Worse buffer cost is irrelevant when only time is selected.
        assert!(dominates(&v(1.0, 99.0), &v(2.0, 1.0), only_time));
    }

    #[test]
    fn zero_cost_edge_case() {
        // c2 with a zero component: only a zero component of c1 can
        // approximately dominate it.
        let z = v(0.0, 1.0);
        assert!(approx_dominates(&v(0.0, 1.0), &z, 2.0, objs2()));
        assert!(!approx_dominates(&v(0.1, 1.0), &z, 2.0, objs2()));
    }

    #[test]
    fn empty_objective_set_everything_dominates() {
        let none = ObjectiveSet::empty();
        assert!(dominates(&v(9.0, 9.0), &v(1.0, 1.0), none));
        assert!(!strictly_dominates(&v(9.0, 9.0), &v(1.0, 1.0), none));
    }

    #[test]
    fn class_id_is_exact_and_roundtrips() {
        let a = PropsKey::rows_only(10.0);
        let b = PropsKey::rows_only(10.0 * (1.0 + 1e-12)); // within tolerance…
        assert!(a.covers(&b) && b.covers(&a));
        assert_ne!(a.class_id(), b.class_id(), "…but a distinct class");
        let back = PropsKey::from_class(a.class_id());
        assert_eq!(back.rows.to_bits(), a.rows.to_bits());
        assert_eq!(back.interest, a.interest);
    }

    #[test]
    fn grid_ratio_follows_the_alpha_grid() {
        let r = grid_cell_ratio(2.0, 4);
        assert!((r - 2.0f64.powf(0.25)).abs() < 1e-15);
        assert_eq!(grid_cell_ratio(1.0, 9), GRID_DEFAULT_RATIO);
    }

    #[test]
    fn same_cell_implies_alpha_dominance_when_verified() {
        // The property the grid fast path exploits: with ρ = α^(1/k), any
        // two positive values in the same bit-cell are within factor
        // ρ ≤ α. Swept over three decades at a dense stride.
        for &(alpha, k) in &[(1.5f64, 1usize), (1.5, 9), (2.0, 4), (1.01, 2)] {
            let ratio = grid_cell_ratio(alpha, k);
            let shift = grid_cell_shift(ratio);
            let mut v = 0.01;
            while v < 10.0 {
                let w = v * (1.0 + (ratio - 1.0) * 0.99);
                if grid_cell_coord(v, shift) == grid_cell_coord(w, shift) {
                    assert!(w <= ratio * v && v <= ratio * w, "α={alpha} k={k} v={v}");
                }
                v *= 1.0 + (ratio - 1.0) * 0.37;
            }
        }
    }

    #[test]
    fn grid_cell_coord_is_monotone_and_separates_octaves() {
        let shift = grid_cell_shift(GRID_DEFAULT_RATIO);
        assert_eq!(shift, 52, "ratio 2 is the pure exponent grid");
        // Monotone truncation: cells order like the values…
        assert!(grid_cell_coord(1.0, shift) < grid_cell_coord(2.5, shift));
        assert!(grid_cell_coord(2.5, shift) < grid_cell_coord(f64::INFINITY, shift));
        // …zero sits in its own bottom cell…
        assert_eq!(grid_cell_coord(0.0, shift), 0);
        assert!(grid_cell_coord(0.0, shift) < grid_cell_coord(f64::MIN_POSITIVE, shift));
        // …and a finer ratio refines the octave.
        let fine = grid_cell_shift(1.0 + 1.0 / 32.0);
        assert!(fine < 52);
        assert_ne!(grid_cell_coord(1.0, fine), grid_cell_coord(1.9, fine));
    }

    #[test]
    fn grid_cell_key_distinguishes_dimension_order() {
        assert_ne!(grid_cell_key([1, 2]), grid_cell_key([2, 1]));
        assert_eq!(grid_cell_key([1, 2, 3]), grid_cell_key([1, 2, 3]));
    }

    #[test]
    fn props_key_covers_is_a_partial_order() {
        let small = PropsKey::rows_only(10.0);
        let big = PropsKey::rows_only(100.0);
        assert!(small.covers(&big));
        assert!(!big.covers(&small));
        assert!(small.covers(&small), "reflexive");
        // A non-trivial interest tag covers the trivial one at equal rows…
        let sorted = PropsKey {
            rows: 10.0,
            interest: 7,
        };
        assert!(sorted.covers(&small));
        // …but not the reverse, and distinct tags are incomparable.
        assert!(!small.covers(&sorted));
        let other_sorted = PropsKey {
            rows: 1.0,
            interest: 8,
        };
        assert!(!other_sorted.covers(&sorted));
        assert!(!sorted.covers(&other_sorted));
    }

    #[test]
    fn props_aware_dominance_needs_both_sides() {
        let better_cost = v(1.0, 1.0);
        let worse_cost = v(2.0, 2.0);
        let few = PropsKey::rows_only(5.0);
        let many = PropsKey::rows_only(50.0);
        // Cost dominance alone is not enough when the dominated plan has
        // fewer rows — exactly the sampling leak.
        assert!(dominates(&better_cost, &worse_cost, objs2()));
        assert!(!dominates_with_props(
            &better_cost,
            &many,
            &worse_cost,
            &few,
            objs2()
        ));
        assert!(dominates_with_props(
            &better_cost,
            &few,
            &worse_cost,
            &many,
            objs2()
        ));
        // Props coverage alone is not enough either.
        assert!(!dominates_with_props(
            &worse_cost,
            &few,
            &better_cost,
            &many,
            objs2()
        ));
    }

    #[test]
    fn approx_props_dominance_relaxes_cost_not_rows() {
        let a = v(1.4, 2.8);
        let b = v(1.0, 2.0);
        let few = PropsKey::rows_only(5.0);
        let many = PropsKey::rows_only(50.0);
        assert!(approx_dominates_with_props(
            &a,
            &few,
            &b,
            &many,
            1.5,
            objs2()
        ));
        // α never excuses a cardinality regression.
        assert!(!approx_dominates_with_props(
            &a,
            &many,
            &b,
            &few,
            1.5,
            objs2()
        ));
    }
}
