//! Canonical preference signatures for plan caching.
//!
//! Two [`Preference`]s describe the same optimization problem when they
//! select the same objectives, impose the same bounds, and weight the
//! objectives in the same *proportions* — scaling every weight by a common
//! positive factor rescales all weighted costs uniformly and therefore
//! changes neither the Pareto front nor which front member is best. A
//! serving layer keys its plan cache on exactly that equivalence class:
//! [`Preference::signature`] hashes the selected objective set, the bounds,
//! and the weights normalized to sum 1 and quantized to a 2⁻³² grid (so
//! the one-ulp wobble of `w/Σw` under different scalings collapses to the
//! same key).

use crate::objective::Objective;
use crate::preference::Preference;

/// A 64-bit canonical fingerprint of one [`Preference`]; see the module
/// docs for the equivalence it encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PreferenceSignature(pub u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_u64(value: u64, seed: u64) -> u64 {
    let mut h = seed;
    for &b in &value.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Weight quantization grid: normalized weights live in `[0, 1]`, so 32
/// fractional bits keep ~9 significant decimal digits — far below any
/// meaningful preference distinction, far above normalization rounding.
const WEIGHT_GRID: f64 = 4_294_967_296.0; // 2^32

impl Preference {
    /// The canonical signature of this preference: selected objectives,
    /// bounds, and scale-normalized weights. Proportional weight vectors
    /// produce equal signatures; any difference in objectives or bounds
    /// produces (modulo hashing) different ones.
    #[must_use]
    pub fn signature(&self) -> PreferenceSignature {
        let mut h = fnv_u64(u64::from(self.objectives.bits()), FNV_OFFSET);
        let total: f64 = self.objectives.iter().map(|o| self.weights.get(o)).sum();
        for o in Objective::ALL {
            if !self.objectives.contains(o) {
                continue;
            }
            let normalized = if total > 0.0 {
                self.weights.get(o) / total
            } else {
                0.0
            };
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let quantized = (normalized * WEIGHT_GRID).round() as u64;
            h = fnv_u64(quantized, h);
            h = fnv_u64(self.bounds.get(o).to_bits(), h);
        }
        PreferenceSignature(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::ObjectiveSet;

    fn base() -> Preference {
        Preference::over(ObjectiveSet::empty())
            .weight(Objective::TotalTime, 1.0)
            .weight(Objective::Energy, 0.3)
            .bound(Objective::TupleLoss, 0.0)
    }

    #[test]
    fn signature_is_deterministic() {
        assert_eq!(base().signature(), base().signature());
    }

    #[test]
    fn signature_is_scale_invariant() {
        for scale in [2.0, 3.7, 0.125, 1e6, 1e-6] {
            let mut scaled = base();
            for o in scaled.objectives.iter() {
                scaled.weights.set(o, base().weights.get(o) * scale);
            }
            assert_eq!(base().signature(), scaled.signature(), "scale {scale}");
        }
    }

    #[test]
    fn signature_distinguishes_weight_proportions() {
        let other = Preference::over(ObjectiveSet::empty())
            .weight(Objective::TotalTime, 1.0)
            .weight(Objective::Energy, 0.6)
            .bound(Objective::TupleLoss, 0.0);
        assert_ne!(base().signature(), other.signature());
    }

    #[test]
    fn signature_distinguishes_objectives_and_bounds() {
        let more_objs = base().weight(Objective::IoLoad, 0.0);
        assert_ne!(base().signature(), more_objs.signature());
        let tighter = base().bound(Objective::TotalTime, 100.0);
        assert_ne!(base().signature(), tighter.signature());
        let different_bound = base().bound(Objective::TupleLoss, 0.5);
        assert_ne!(base().signature(), different_bound.signature());
    }

    #[test]
    fn zero_weights_share_a_signature_regardless_of_scale() {
        let a = Preference::over(ObjectiveSet::single(Objective::TotalTime));
        let b = Preference::over(ObjectiveSet::single(Objective::TotalTime));
        assert_eq!(a.signature(), b.signature());
    }
}
