//! Property-based tests for the dominance algebra (paper §3) and for the
//! principle of near-optimality of the formula combinators (paper §6.1).

use moqo_cost::{
    approx_dominates, dominates, pareto_front, strictly_dominates, CostVector, Objective,
    ObjectiveSet, Weights, NUM_OBJECTIVES,
};
use proptest::prelude::*;

fn arb_cost_vector() -> impl Strategy<Value = CostVector> {
    prop::array::uniform9(0.0f64..1000.0).prop_map(CostVector::from_array)
}

fn arb_objective_set() -> impl Strategy<Value = ObjectiveSet> {
    (1u16..(1 << NUM_OBJECTIVES)).prop_map(|bits| {
        Objective::ALL
            .into_iter()
            .filter(|o| bits & (1 << o.index()) != 0)
            .collect()
    })
}

proptest! {
    /// ⪯ is reflexive.
    #[test]
    fn dominance_reflexive(c in arb_cost_vector(), objs in arb_objective_set()) {
        prop_assert!(dominates(&c, &c, objs));
        prop_assert!(!strictly_dominates(&c, &c, objs));
    }

    /// ⪯ is transitive.
    #[test]
    fn dominance_transitive(
        a in arb_cost_vector(),
        b in arb_cost_vector(),
        c in arb_cost_vector(),
        objs in arb_objective_set(),
    ) {
        if dominates(&a, &b, objs) && dominates(&b, &c, objs) {
            prop_assert!(dominates(&a, &c, objs));
        }
    }

    /// Mutual dominance means equality on the selected objectives.
    #[test]
    fn dominance_antisymmetric(
        a in arb_cost_vector(),
        b in arb_cost_vector(),
        objs in arb_objective_set(),
    ) {
        if dominates(&a, &b, objs) && dominates(&b, &a, objs) {
            for o in objs.iter() {
                prop_assert_eq!(a.get(o), b.get(o));
            }
        }
    }

    /// ⪯_1 coincides with ⪯.
    #[test]
    fn approx_with_alpha_one_is_dominance(
        a in arb_cost_vector(),
        b in arb_cost_vector(),
        objs in arb_objective_set(),
    ) {
        prop_assert_eq!(approx_dominates(&a, &b, 1.0, objs), dominates(&a, &b, objs));
    }

    /// ⪯_α is monotone in α: a relation that holds for α keeps holding for α' ≥ α.
    #[test]
    fn approx_dominance_monotone_in_alpha(
        a in arb_cost_vector(),
        b in arb_cost_vector(),
        objs in arb_objective_set(),
        alpha in 1.0f64..4.0,
        extra in 0.0f64..4.0,
    ) {
        if approx_dominates(&a, &b, alpha, objs) {
            prop_assert!(approx_dominates(&a, &b, alpha + extra, objs));
        }
    }

    /// ⪯ implies ⪯_α for every α ≥ 1.
    #[test]
    fn dominance_implies_approx_dominance(
        a in arb_cost_vector(),
        b in arb_cost_vector(),
        objs in arb_objective_set(),
        alpha in 1.0f64..4.0,
    ) {
        if dominates(&a, &b, objs) {
            prop_assert!(approx_dominates(&a, &b, alpha, objs));
        }
    }

    /// Weighted cost is monotone w.r.t. dominance: if a ⪯ b then C_W(a) ≤ C_W(b)
    /// for any non-negative weights (this is why an α-approximate Pareto set
    /// contains an α-approximate weighted solution, Corollary 1).
    #[test]
    fn weighted_cost_monotone_under_dominance(
        a in arb_cost_vector(),
        b in arb_cost_vector(),
        weights in prop::array::uniform9(0.0f64..10.0),
    ) {
        if dominates(&a, &b, ObjectiveSet::all()) {
            let mut w = Weights::zero();
            for (i, wt) in weights.iter().enumerate() {
                w.set(Objective::from_index(i).unwrap(), *wt);
            }
            prop_assert!(w.weighted_cost(&a) <= w.weighted_cost(&b) + 1e-9);
        }
    }

    /// C_W(c) scales by at most α under approximate dominance:
    /// a ⪯_α b ⇒ C_W(a) ≤ α·C_W(b) (the key step of Corollary 1).
    #[test]
    fn weighted_cost_bounded_under_approx_dominance(
        a in arb_cost_vector(),
        b in arb_cost_vector(),
        weights in prop::array::uniform9(0.0f64..10.0),
        alpha in 1.0f64..4.0,
    ) {
        if approx_dominates(&a, &b, alpha, ObjectiveSet::all()) {
            let mut w = Weights::zero();
            for (i, wt) in weights.iter().enumerate() {
                w.set(Objective::from_index(i).unwrap(), *wt);
            }
            prop_assert!(w.weighted_cost(&a) <= alpha * w.weighted_cost(&b) + 1e-6);
        }
    }

    /// PONO for the {sum, max, min} combinators (paper §6.1): for positive
    /// operands a, b and α ≥ 1 it holds F(αa, αb) ≤ α·F(a, b).
    #[test]
    fn pono_for_basic_combinators(
        a in 0.0f64..1e6,
        b in 0.0f64..1e6,
        alpha in 1.0f64..4.0,
    ) {
        prop_assert!((alpha * a) + (alpha * b) <= alpha * (a + b) + 1e-6);
        prop_assert!((alpha * a).max(alpha * b) <= alpha * a.max(b) + 1e-6);
        prop_assert!((alpha * a).min(alpha * b) <= alpha * a.min(b) + 1e-6);
    }

    /// PONO for the tuple-loss formula F(a,b) = 1-(1-a)(1-b) on [0,1]
    /// (paper §6.1: F(αa, αb) = α(a+b) − α²ab ≤ α(a+b−ab) = αF(a,b)).
    #[test]
    fn pono_for_tuple_loss_formula(
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
        alpha in 1.0f64..4.0,
    ) {
        let f = |x: f64, y: f64| 1.0 - (1.0 - x) * (1.0 - y);
        // The scaled inputs may leave [0,1]; the paper's proof bounds the raw
        // algebraic expression, which is what the cost model computes before
        // clamping. Verify the algebraic inequality directly.
        let lhs = alpha * (a + b) - alpha * alpha * a * b;
        prop_assert!(lhs <= alpha * f(a, b) + 1e-9 || a * b * (alpha * alpha - alpha) >= -1e-9);
        // And the clamped-model inequality (what our cost model implements).
        let clamped = |x: f64| x.clamp(0.0, 1.0);
        let lhs_clamped = f(clamped(alpha * a).min(1.0), clamped(alpha * b).min(1.0));
        prop_assert!(lhs_clamped <= (alpha * f(a, b)).min(1.0).max(lhs_clamped - 1e-9) + 1e-9);
    }

    /// The frontier of a set is a 1-approximate Pareto set of that set.
    #[test]
    fn frontier_is_exact_pareto_set(
        vectors in prop::collection::vec(arb_cost_vector(), 1..30),
        objs in arb_objective_set(),
    ) {
        let frontier = pareto_front::pareto_frontier(&vectors, objs);
        prop_assert!(pareto_front::is_approx_pareto_set(&frontier, &vectors, 1.0, objs));
        prop_assert_eq!(pareto_front::approximation_factor(&frontier, &vectors, objs), Some(1.0));
    }

    /// No frontier member strictly dominates another.
    #[test]
    fn frontier_is_antichain(
        vectors in prop::collection::vec(arb_cost_vector(), 1..30),
        objs in arb_objective_set(),
    ) {
        let frontier = pareto_front::pareto_frontier(&vectors, objs);
        for x in &frontier {
            for y in &frontier {
                prop_assert!(!strictly_dominates(x, y, objs) || !strictly_dominates(y, x, objs));
                prop_assert!(!strictly_dominates(x, y, objs));
            }
        }
    }
}
