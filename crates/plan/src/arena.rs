//! Arena storage for plans with O(1) space per plan (Theorem 1's accounting).

use crate::operator::{JoinOp, ScanOp};

/// Index of a plan inside a [`PlanArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanId(pub u32);

/// One plan node: either a scan of a base relation or a join of two
/// previously stored plans. Matches the paper's O(1)-per-plan representation
/// (operator ID + table ID, or operator ID + two sub-plan pointers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanNode {
    /// Scan of base relation `rel` (index within the query block).
    Scan {
        /// Relation index within the query block.
        rel: usize,
        /// The scan operator configuration.
        op: ScanOp,
    },
    /// Join of two stored sub-plans.
    Join {
        /// The join operator configuration.
        op: JoinOp,
        /// Outer (left) input plan.
        left: PlanId,
        /// Inner (right) input plan.
        right: PlanId,
    },
}

/// Append-only arena of plan nodes. Plans reference sub-plans by id, so the
/// dynamic-programming tables can share sub-plans freely; discarding a
/// pruned plan costs nothing (its node simply becomes garbage until the
/// arena is dropped), which mirrors how the paper accounts space by the
/// number of *stored* plans.
#[derive(Debug, Default, Clone)]
pub struct PlanArena {
    nodes: Vec<PlanNode>,
}

impl PlanArena {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        PlanArena::default()
    }

    /// Stores a scan node.
    pub fn scan(&mut self, rel: usize, op: ScanOp) -> PlanId {
        self.push(PlanNode::Scan { rel, op })
    }

    /// Stores a join node over two existing plans.
    ///
    /// # Panics
    ///
    /// Debug-asserts both children exist.
    pub fn join(&mut self, op: JoinOp, left: PlanId, right: PlanId) -> PlanId {
        debug_assert!((left.0 as usize) < self.nodes.len());
        debug_assert!((right.0 as usize) < self.nodes.len());
        self.push(PlanNode::Join { op, left, right })
    }

    fn push(&mut self, node: PlanNode) -> PlanId {
        let id = PlanId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// The node for a plan id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this arena.
    #[must_use]
    pub fn node(&self, id: PlanId) -> PlanNode {
        self.nodes[id.0 as usize]
    }

    /// Number of nodes ever stored (including pruned garbage).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Bytes of memory one stored plan node accounts for — used by the
    /// deterministic memory metric (see DESIGN.md substitution table).
    #[must_use]
    pub fn bytes_per_node() -> usize {
        std::mem::size_of::<PlanNode>()
    }

    /// Walks the plan tree bottom-up, invoking `visit` on every node
    /// (children before parents).
    pub fn visit_postorder(&self, root: PlanId, visit: &mut impl FnMut(PlanId, PlanNode)) {
        match self.node(root) {
            node @ PlanNode::Scan { .. } => visit(root, node),
            node @ PlanNode::Join { left, right, .. } => {
                self.visit_postorder(left, visit);
                self.visit_postorder(right, visit);
                visit(root, node);
            }
        }
    }

    /// Number of scan leaves in the plan tree rooted at `root`.
    #[must_use]
    pub fn leaf_count(&self, root: PlanId) -> usize {
        let mut leaves = 0;
        self.visit_postorder(root, &mut |_, node| {
            if matches!(node, PlanNode::Scan { .. }) {
                leaves += 1;
            }
        });
        leaves
    }

    /// Collects the scan operators used in the plan, in leaf order.
    #[must_use]
    pub fn scan_ops(&self, root: PlanId) -> Vec<(usize, ScanOp)> {
        let mut scans = Vec::new();
        self.visit_postorder(root, &mut |_, node| {
            if let PlanNode::Scan { rel, op } = node {
                scans.push((rel, op));
            }
        });
        scans
    }

    /// Collects the join operators used in the plan, bottom-up.
    #[must_use]
    pub fn join_ops(&self, root: PlanId) -> Vec<JoinOp> {
        let mut joins = Vec::new();
        self.visit_postorder(root, &mut |_, node| {
            if let PlanNode::Join { op, .. } = node {
                joins.push(op);
            }
        });
        joins
    }

    /// Whether any scan in the plan samples.
    #[must_use]
    pub fn uses_sampling(&self, root: PlanId) -> bool {
        self.scan_ops(root).iter().any(|(_, op)| op.is_sampling())
    }

    /// Copies the plan tree rooted at `root` from `src` into this arena,
    /// returning the new root id. This is the cross-arena re-rooting step of
    /// parallel search: worker arenas stay private, and only the surviving
    /// plans are adopted into the merged arena (children before parents, so
    /// adopted ids are valid the moment they are created).
    ///
    /// # Panics
    ///
    /// Panics if `root` does not belong to `src`.
    pub fn adopt(&mut self, src: &PlanArena, root: PlanId) -> PlanId {
        match src.node(root) {
            PlanNode::Scan { rel, op } => self.scan(rel, op),
            PlanNode::Join { op, left, right } => {
                let l = self.adopt(src, left);
                let r = self.adopt(src, right);
                self.join(op, l, r)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tree() -> (PlanArena, PlanId) {
        let mut arena = PlanArena::new();
        let a = arena.scan(0, ScanOp::SeqScan);
        let b = arena.scan(1, ScanOp::SamplingScan { rate_pct: 2 });
        let ab = arena.join(JoinOp::HashJoin { dop: 2 }, a, b);
        let c = arena.scan(2, ScanOp::IndexScan { column: 0 });
        let root = arena.join(JoinOp::SortMergeJoin { dop: 1 }, ab, c);
        (arena, root)
    }

    #[test]
    fn arena_assigns_sequential_ids() {
        let (arena, root) = small_tree();
        assert_eq!(arena.len(), 5);
        assert_eq!(root, PlanId(4));
    }

    #[test]
    fn postorder_visits_children_first() {
        let (arena, root) = small_tree();
        let mut order = Vec::new();
        arena.visit_postorder(root, &mut |id, _| order.push(id.0));
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn leaf_and_join_inventories() {
        let (arena, root) = small_tree();
        assert_eq!(arena.leaf_count(root), 3);
        assert_eq!(arena.scan_ops(root).len(), 3);
        let joins = arena.join_ops(root);
        assert_eq!(joins.len(), 2);
        assert_eq!(joins[0], JoinOp::HashJoin { dop: 2 });
        assert_eq!(joins[1], JoinOp::SortMergeJoin { dop: 1 });
    }

    #[test]
    fn sampling_detection() {
        let (arena, root) = small_tree();
        assert!(arena.uses_sampling(root));
        let mut clean = PlanArena::new();
        let s = clean.scan(0, ScanOp::SeqScan);
        assert!(!clean.uses_sampling(s));
    }

    #[test]
    fn adopt_copies_across_arenas() {
        let (src, root) = small_tree();
        let mut dst = PlanArena::new();
        // Pre-existing nodes must not confuse the id mapping.
        dst.scan(7, ScanOp::SeqScan);
        let adopted = dst.adopt(&src, root);
        assert_eq!(dst.extract_tree(adopted), src.extract_tree(root));
        assert_eq!(dst.len(), 1 + src.len());
        // Adopting a leaf works too.
        let leaf = dst.adopt(&src, PlanId(0));
        assert!(matches!(dst.node(leaf), PlanNode::Scan { rel: 0, .. }));
    }

    #[test]
    fn node_is_compact() {
        // The O(1)-space argument of Theorem 1: a node must stay small.
        assert!(PlanArena::bytes_per_node() <= 24);
    }
}
