//! Physical plan properties tracked alongside cost vectors.

use moqo_catalog::RelMask;

/// Coarse output ordering of a plan — the slice of Postgres path keys the
/// extended plan space needs: either unordered, or sorted on a single join
/// column identified by `(relation index, column ordinal)` within the query
/// block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SortOrder {
    /// No useful ordering.
    None,
    /// Sorted on a base-relation column.
    Col {
        /// Relation index within the query block.
        rel: usize,
        /// Column ordinal within that relation's table.
        col: u16,
    },
}

impl SortOrder {
    /// Convenience constructor for a column ordering.
    #[must_use]
    pub fn on(rel: usize, col: u16) -> Self {
        SortOrder::Col { rel, col }
    }

    /// Whether the plan output is sorted at all.
    #[must_use]
    pub fn is_sorted(self) -> bool {
        matches!(self, SortOrder::Col { .. })
    }
}

/// Physical properties of a plan, used by the cost model to derive parent
/// costs and by the dynamic programming to group comparable plans.
///
/// `rows` already includes the sampling factor; `sampling_factor` is the
/// product of the sampling fractions of all sampling scans in the plan, so
/// `rows = rows_without_sampling × sampling_factor`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanProps {
    /// Relations covered by the plan (bitmask within the query block).
    pub rels: RelMask,
    /// Estimated output row count (≥ a small positive value).
    pub rows: f64,
    /// Output tuple width in bytes.
    pub width: f64,
    /// Output sort order.
    pub order: SortOrder,
    /// Product of sampling fractions over all scans in the plan (1.0 = no
    /// sampling anywhere).
    pub sampling_factor: f64,
}

impl PlanProps {
    /// Output size in bytes.
    #[must_use]
    pub fn bytes(&self) -> f64 {
        self.rows * self.width
    }

    /// Output size in pages of `page_bytes` bytes each (at least one page).
    #[must_use]
    pub fn pages(&self, page_bytes: f64) -> f64 {
        (self.bytes() / page_bytes).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_order_equality_and_sortedness() {
        assert_eq!(SortOrder::on(1, 2), SortOrder::Col { rel: 1, col: 2 });
        assert_ne!(SortOrder::on(1, 2), SortOrder::on(1, 3));
        assert!(SortOrder::on(0, 0).is_sorted());
        assert!(!SortOrder::None.is_sorted());
    }

    #[test]
    fn bytes_and_pages() {
        let p = PlanProps {
            rels: 0b1,
            rows: 1000.0,
            width: 100.0,
            order: SortOrder::None,
            sampling_factor: 1.0,
        };
        assert_eq!(p.bytes(), 100_000.0);
        assert!((p.pages(8192.0) - 100_000.0 / 8192.0).abs() < 1e-9);
        // Tiny outputs still occupy one page.
        let tiny = PlanProps {
            rows: 1.0,
            width: 8.0,
            ..p
        };
        assert_eq!(tiny.pages(8192.0), 1.0);
    }
}
