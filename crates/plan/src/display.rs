//! ASCII rendering of plan trees in the spirit of the paper's Figure 3.

use moqo_catalog::{Catalog, JoinGraph};

use crate::arena::{PlanArena, PlanId, PlanNode};

/// Renders a plan tree as indented ASCII, e.g.
///
/// ```text
/// SMJ(dop=1)
/// ├─ IdxNL
/// │  ├─ SeqScan(orders)
/// │  └─ IdxScan(customer.c_custkey)
/// └─ IdxScan(lineitem.l_orderkey)
/// ```
#[must_use]
pub fn render_plan(
    arena: &PlanArena,
    root: PlanId,
    graph: &JoinGraph,
    catalog: &Catalog,
) -> String {
    let mut out = String::new();
    render_node(arena, root, graph, catalog, "", "", &mut out);
    out
}

fn render_node(
    arena: &PlanArena,
    id: PlanId,
    graph: &JoinGraph,
    catalog: &Catalog,
    prefix: &str,
    child_prefix: &str,
    out: &mut String,
) {
    match arena.node(id) {
        PlanNode::Scan { rel, op } => {
            let base = &graph.rels[rel];
            let table = catalog.table(base.table);
            let label = match op {
                crate::ScanOp::SeqScan => format!("SeqScan({})", base.alias),
                crate::ScanOp::IndexScan { column } => {
                    format!("IdxScan({}.{})", base.alias, table.column(column).name)
                }
                crate::ScanOp::SamplingScan { rate_pct } => {
                    format!("SampleScan({}, {rate_pct}%)", base.alias)
                }
            };
            out.push_str(prefix);
            out.push_str(&label);
            out.push('\n');
        }
        PlanNode::Join { op, left, right } => {
            out.push_str(prefix);
            out.push_str(&op.to_string());
            out.push('\n');
            let left_prefix = format!("{child_prefix}├─ ");
            let left_child_prefix = format!("{child_prefix}│  ");
            render_node(
                arena,
                left,
                graph,
                catalog,
                &left_prefix,
                &left_child_prefix,
                out,
            );
            let right_prefix = format!("{child_prefix}└─ ");
            let right_child_prefix = format!("{child_prefix}   ");
            render_node(
                arena,
                right,
                graph,
                catalog,
                &right_prefix,
                &right_child_prefix,
                out,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JoinOp, ScanOp};
    use moqo_catalog::{ColumnStats, JoinGraphBuilder, TableStats};

    #[test]
    fn renders_figure3_style_tree() {
        let mut catalog = Catalog::new();
        catalog.add_table(
            TableStats::new("orders", 1000.0, 100.0)
                .with_column(ColumnStats::new("o_orderkey", 1000.0).indexed()),
        );
        catalog.add_table(
            TableStats::new("lineitem", 4000.0, 120.0)
                .with_column(ColumnStats::new("l_orderkey", 1000.0).indexed()),
        );
        let graph = JoinGraphBuilder::new(&catalog)
            .rel("orders", 1.0)
            .rel("lineitem", 1.0)
            .join(("orders", "o_orderkey"), ("lineitem", "l_orderkey"))
            .build();

        let mut arena = PlanArena::new();
        let o = arena.scan(0, ScanOp::SeqScan);
        let l = arena.scan(1, ScanOp::IndexScan { column: 0 });
        let root = arena.join(JoinOp::HashJoin { dop: 1 }, o, l);

        let s = render_plan(&arena, root, &graph, &catalog);
        assert!(s.contains("HashJ(dop=1)"), "{s}");
        assert!(s.contains("├─ SeqScan(orders)"), "{s}");
        assert!(s.contains("└─ IdxScan(lineitem.l_orderkey)"), "{s}");
    }

    #[test]
    fn renders_sampling_scan() {
        let mut catalog = Catalog::new();
        catalog
            .add_table(TableStats::new("t", 10.0, 10.0).with_column(ColumnStats::new("id", 10.0)));
        let graph = JoinGraphBuilder::new(&catalog).rel("t", 1.0).build();
        let mut arena = PlanArena::new();
        let s = arena.scan(0, ScanOp::SamplingScan { rate_pct: 3 });
        let out = render_plan(&arena, s, &graph, &catalog);
        assert_eq!(out, "SampleScan(t, 3%)\n");
    }
}
