//! Scan and join operators of the extended plan space (paper §4).

use std::fmt;

/// Maximal degree of parallelism per operator ("up to 4 cores can be used
/// per operation", paper §4).
pub const MAX_DOP: u8 = 4;

/// The sampling rates (percent of a base table) offered by the parameterized
/// sampling scan ("scans between 1% and 5% of a base table", paper §4).
pub const SAMPLING_RATES_PCT: [u8; 5] = [1, 2, 3, 4, 5];

/// A scan operator applied to one base relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScanOp {
    /// Full sequential scan.
    SeqScan,
    /// Full index scan over the index on the given column ordinal; output is
    /// sorted on that column.
    IndexScan {
        /// Column ordinal (within the scanned table) whose index is used.
        column: u16,
    },
    /// Bernoulli sampling scan reading `rate_pct` percent of the table;
    /// introduces a tuple loss of `1 − rate_pct/100`.
    SamplingScan {
        /// Sampling rate in percent, one of [`SAMPLING_RATES_PCT`].
        rate_pct: u8,
    },
}

impl ScanOp {
    /// Fraction of tuples retained by this scan (1.0 for full scans).
    #[must_use]
    pub fn sampling_fraction(self) -> f64 {
        match self {
            ScanOp::SeqScan | ScanOp::IndexScan { .. } => 1.0,
            ScanOp::SamplingScan { rate_pct } => f64::from(rate_pct) / 100.0,
        }
    }

    /// Whether this scan samples (loses tuples).
    #[must_use]
    pub fn is_sampling(self) -> bool {
        matches!(self, ScanOp::SamplingScan { .. })
    }

    /// Short operator name as used in plan rendering (Figure 3 style).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ScanOp::SeqScan => "SeqScan",
            ScanOp::IndexScan { .. } => "IdxScan",
            ScanOp::SamplingScan { .. } => "SampleScan",
        }
    }
}

impl fmt::Display for ScanOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanOp::SeqScan => write!(f, "SeqScan"),
            ScanOp::IndexScan { column } => write!(f, "IdxScan(col{column})"),
            ScanOp::SamplingScan { rate_pct } => write!(f, "SampleScan({rate_pct}%)"),
        }
    }
}

/// A join operator combining two sub-plans. The left input is the outer
/// (probe/driving) side, the right input the inner (build/lookup) side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinOp {
    /// Hash join: builds a hash table on the inner side, probes with the
    /// outer side. Parameterized by degree of parallelism.
    HashJoin {
        /// Degree of parallelism, `1..=MAX_DOP`.
        dop: u8,
    },
    /// Sort-merge join: sorts both inputs on the join key (skipping inputs
    /// already sorted appropriately) and merges. Parameterized by degree of
    /// parallelism used for the sorts.
    SortMergeJoin {
        /// Degree of parallelism, `1..=MAX_DOP`.
        dop: u8,
    },
    /// Index-nested-loop join: for each outer tuple, probes an index on the
    /// inner side. The inner side must be a single base relation with an
    /// index on the join column.
    IndexNestedLoop,
    /// Plain (tuple-at-a-time) nested-loop join; the only operator
    /// applicable to joins without equi-predicates (Cartesian products).
    NestedLoop,
}

impl JoinOp {
    /// Degree of parallelism of this operator (1 for serial operators).
    #[must_use]
    pub fn dop(self) -> u8 {
        match self {
            JoinOp::HashJoin { dop } | JoinOp::SortMergeJoin { dop } => dop,
            JoinOp::IndexNestedLoop | JoinOp::NestedLoop => 1,
        }
    }

    /// Whether the operator requires an equi-join predicate between its
    /// inputs.
    #[must_use]
    pub fn requires_equi_predicate(self) -> bool {
        !matches!(self, JoinOp::NestedLoop)
    }

    /// Short operator name as used in plan rendering (Figure 3 style).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JoinOp::HashJoin { .. } => "HashJ",
            JoinOp::SortMergeJoin { .. } => "SMJ",
            JoinOp::IndexNestedLoop => "IdxNL",
            JoinOp::NestedLoop => "NL",
        }
    }

    /// Enumerates every join operator configuration of the extended plan
    /// space: hash and sort-merge joins with DOP 1–4, index-nested-loop and
    /// nested-loop joins.
    #[must_use]
    pub fn all_configurations() -> Vec<JoinOp> {
        let mut ops = Vec::with_capacity(2 * MAX_DOP as usize + 2);
        for dop in 1..=MAX_DOP {
            ops.push(JoinOp::HashJoin { dop });
        }
        for dop in 1..=MAX_DOP {
            ops.push(JoinOp::SortMergeJoin { dop });
        }
        ops.push(JoinOp::IndexNestedLoop);
        ops.push(JoinOp::NestedLoop);
        ops
    }
}

impl fmt::Display for JoinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinOp::HashJoin { dop } => write!(f, "HashJ(dop={dop})"),
            JoinOp::SortMergeJoin { dop } => write!(f, "SMJ(dop={dop})"),
            JoinOp::IndexNestedLoop => write!(f, "IdxNL"),
            JoinOp::NestedLoop => write!(f, "NL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_fractions() {
        assert_eq!(ScanOp::SeqScan.sampling_fraction(), 1.0);
        assert_eq!(ScanOp::IndexScan { column: 0 }.sampling_fraction(), 1.0);
        assert_eq!(
            ScanOp::SamplingScan { rate_pct: 5 }.sampling_fraction(),
            0.05
        );
        assert!(ScanOp::SamplingScan { rate_pct: 1 }.is_sampling());
        assert!(!ScanOp::SeqScan.is_sampling());
    }

    #[test]
    fn join_configuration_count_matches_paper_plan_space() {
        // "over 10 different configurations are considered for the scan and
        // for the join operator respectively" (§5.1): 4 + 4 + 1 + 1 = 10.
        assert_eq!(JoinOp::all_configurations().len(), 10);
    }

    #[test]
    fn dop_bounds() {
        for op in JoinOp::all_configurations() {
            assert!(op.dop() >= 1 && op.dop() <= MAX_DOP);
        }
        assert_eq!(JoinOp::IndexNestedLoop.dop(), 1);
    }

    #[test]
    fn only_nested_loop_allows_cartesian() {
        for op in JoinOp::all_configurations() {
            assert_eq!(
                op.requires_equi_predicate(),
                !matches!(op, JoinOp::NestedLoop)
            );
        }
    }

    #[test]
    fn display_matches_figure3_names() {
        assert_eq!(JoinOp::HashJoin { dop: 1 }.name(), "HashJ");
        assert_eq!(JoinOp::SortMergeJoin { dop: 2 }.name(), "SMJ");
        assert_eq!(JoinOp::IndexNestedLoop.name(), "IdxNL");
        assert_eq!(
            ScanOp::SamplingScan { rate_pct: 3 }.to_string(),
            "SampleScan(3%)"
        );
    }
}
