//! Query-plan representation for the MOQO optimizer.
//!
//! The paper's complexity analysis (proof of Theorem 1) relies on plans
//! occupying O(1) space each: "a scan plan is represented by an operator ID
//! and a table ID. All other plans are represented by the operator ID of the
//! last join and pointers to the two sub-plans generating its operands."
//! [`PlanArena`] implements exactly that: plans are small copyable nodes
//! referencing children by [`PlanId`], so sub-plans are shared rather than
//! cloned across the dynamic-programming table.
//!
//! The extended plan space of the paper (§4) is covered by:
//!
//! * [`ScanOp`] — sequential scan, index scan, and a parameterized sampling
//!   scan covering 1–5 % of a base table,
//! * [`JoinOp`] — hash join, sort-merge join (both parameterized by a degree
//!   of parallelism of up to four cores), index-nested-loop join and plain
//!   nested-loop join,
//! * [`PlanProps`] — the physical properties the cost model and the
//!   dynamic programming need per plan: estimated output rows, tuple width,
//!   output [`SortOrder`] (Postgres path keys, coarse) and the cumulated
//!   sampling factor.
//!
//! Randomized search works on owned [`JoinTree`]s extracted from the arena,
//! transformed (commutativity, associativity, operator swaps) and
//! re-inserted; see [`tree`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod display;
mod operator;
mod props;
pub mod tree;

pub use arena::{PlanArena, PlanId, PlanNode};
pub use display::render_plan;
pub use operator::{JoinOp, ScanOp, MAX_DOP, SAMPLING_RATES_PCT};
pub use props::{PlanProps, SortOrder};
pub use tree::JoinTree;
