//! Owned join trees and the local plan transformations of randomized
//! search.
//!
//! The [`crate::PlanArena`] is append-only and shares sub-plans by id, which
//! is ideal for dynamic programming but awkward to *rewrite*. Randomized
//! optimizers (RMQ) therefore extract a plan into an owned [`JoinTree`],
//! apply one of the classical transformation rules — join commutativity,
//! join associativity, operator-implementation swaps — and re-insert the
//! transformed tree into the arena once it has been re-costed. Rejected
//! candidates leave at most a few garbage nodes behind, exactly like pruned
//! plans in the dynamic-programming tables.

use crate::arena::{PlanArena, PlanId, PlanNode};
use crate::operator::{JoinOp, ScanOp};

/// An owned binary join tree: scans at the leaves, joins at internal nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinTree {
    /// Scan of base relation `rel` with operator `op`.
    Scan {
        /// Relation index within the query block.
        rel: usize,
        /// The scan operator configuration.
        op: ScanOp,
    },
    /// Join of two subtrees; `left` is the outer input.
    Join {
        /// The join operator configuration.
        op: JoinOp,
        /// Outer (left) input.
        left: Box<JoinTree>,
        /// Inner (right) input.
        right: Box<JoinTree>,
    },
}

impl JoinTree {
    /// A scan leaf.
    #[must_use]
    pub fn scan(rel: usize, op: ScanOp) -> Self {
        JoinTree::Scan { rel, op }
    }

    /// A join node over two subtrees.
    #[must_use]
    pub fn join(op: JoinOp, left: JoinTree, right: JoinTree) -> Self {
        JoinTree::Join {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Number of scan leaves.
    #[must_use]
    pub fn n_leaves(&self) -> usize {
        match self {
            JoinTree::Scan { .. } => 1,
            JoinTree::Join { left, right, .. } => left.n_leaves() + right.n_leaves(),
        }
    }

    /// Number of join nodes (`n_leaves − 1` for a well-formed tree).
    #[must_use]
    pub fn n_joins(&self) -> usize {
        match self {
            JoinTree::Scan { .. } => 0,
            JoinTree::Join { left, right, .. } => 1 + left.n_joins() + right.n_joins(),
        }
    }

    /// Bitmask of the relations scanned anywhere in the tree.
    #[must_use]
    pub fn rel_mask(&self) -> u32 {
        match self {
            JoinTree::Scan { rel, .. } => 1u32 << rel,
            JoinTree::Join { left, right, .. } => left.rel_mask() | right.rel_mask(),
        }
    }

    /// Immutable access to the `k`-th join node in preorder (0-based).
    #[must_use]
    pub fn join_at(&self, k: usize) -> Option<&JoinTree> {
        match self {
            JoinTree::Scan { .. } => None,
            JoinTree::Join { .. } if k == 0 => Some(self),
            JoinTree::Join { left, right, .. } => {
                let k = k - 1;
                let in_left = left.n_joins();
                if k < in_left {
                    left.join_at(k)
                } else {
                    right.join_at(k - in_left)
                }
            }
        }
    }

    /// The `k`-th join node in preorder (0-based), if it exists.
    fn join_mut(&mut self, k: usize) -> Option<&mut JoinTree> {
        match self {
            JoinTree::Scan { .. } => None,
            JoinTree::Join { .. } if k == 0 => Some(self),
            JoinTree::Join { left, right, .. } => {
                let k = k - 1;
                let in_left = left.n_joins();
                if k < in_left {
                    left.join_mut(k)
                } else {
                    right.join_mut(k - in_left)
                }
            }
        }
    }

    /// The relation index and scan operator of the `k`-th leaf
    /// (left-to-right, 0-based), if it exists.
    #[must_use]
    pub fn scan_at(&self, k: usize) -> Option<(usize, ScanOp)> {
        match self {
            JoinTree::Scan { rel, op } => (k == 0).then_some((*rel, *op)),
            JoinTree::Join { left, right, .. } => {
                let in_left = left.n_leaves();
                if k < in_left {
                    left.scan_at(k)
                } else {
                    right.scan_at(k - in_left)
                }
            }
        }
    }

    /// The `k`-th scan leaf in left-to-right order (0-based), if it exists.
    fn leaf_mut(&mut self, k: usize) -> Option<&mut JoinTree> {
        match self {
            JoinTree::Scan { .. } => (k == 0).then_some(self),
            JoinTree::Join { left, right, .. } => {
                let in_left = left.n_leaves();
                if k < in_left {
                    left.leaf_mut(k)
                } else {
                    right.leaf_mut(k - in_left)
                }
            }
        }
    }

    /// **Join commutativity** `A ⋈ B → B ⋈ A` at the `k`-th join node
    /// (preorder). Returns `false` when `k` is out of range.
    pub fn commute(&mut self, k: usize) -> bool {
        let Some(JoinTree::Join { left, right, .. }) = self.join_mut(k) else {
            return false;
        };
        std::mem::swap(left, right);
        true
    }

    /// **Join associativity**, right rotation:
    /// `(A ⋈₂ B) ⋈₁ C → A ⋈₂ (B ⋈₁ C)` at the `k`-th join node. Operator
    /// configurations travel with their position; the caller re-costs the
    /// result and discards it if an operator became inapplicable. Returns
    /// `false` when `k` is out of range or the node's left child is a leaf.
    pub fn rotate_right(&mut self, k: usize) -> bool {
        let Some(node) = self.join_mut(k) else {
            return false;
        };
        let JoinTree::Join {
            op: op1,
            left,
            right,
        } = node
        else {
            return false;
        };
        if !matches!(**left, JoinTree::Join { .. }) {
            return false;
        }
        let c = std::mem::replace(right, Box::new(JoinTree::scan(0, ScanOp::SeqScan)));
        let JoinTree::Join {
            op: op2,
            left: a,
            right: b,
        } = std::mem::replace(&mut **left, JoinTree::scan(0, ScanOp::SeqScan))
        else {
            unreachable!("checked above")
        };
        let inner = JoinTree::Join {
            op: *op1,
            left: b,
            right: c,
        };
        *node = JoinTree::Join {
            op: op2,
            left: a,
            right: Box::new(inner),
        };
        true
    }

    /// **Join associativity**, left rotation:
    /// `A ⋈₁ (B ⋈₂ C) → (A ⋈₁ B) ⋈₂ C` at the `k`-th join node. Returns
    /// `false` when `k` is out of range or the node's right child is a leaf.
    pub fn rotate_left(&mut self, k: usize) -> bool {
        let Some(node) = self.join_mut(k) else {
            return false;
        };
        let JoinTree::Join {
            op: op1,
            left,
            right,
        } = node
        else {
            return false;
        };
        if !matches!(**right, JoinTree::Join { .. }) {
            return false;
        }
        let a = std::mem::replace(left, Box::new(JoinTree::scan(0, ScanOp::SeqScan)));
        let JoinTree::Join {
            op: op2,
            left: b,
            right: c,
        } = std::mem::replace(&mut **right, JoinTree::scan(0, ScanOp::SeqScan))
        else {
            unreachable!("checked above")
        };
        let inner = JoinTree::Join {
            op: *op1,
            left: a,
            right: b,
        };
        *node = JoinTree::Join {
            op: op2,
            left: Box::new(inner),
            right: c,
        };
        true
    }

    /// **Operator swap**: replace the join operator at the `k`-th join node.
    /// Returns `false` when `k` is out of range.
    pub fn set_join_op(&mut self, k: usize, new_op: JoinOp) -> bool {
        let Some(JoinTree::Join { op, .. }) = self.join_mut(k) else {
            return false;
        };
        *op = new_op;
        true
    }

    /// **Operator swap**: replace the scan operator at the `k`-th leaf
    /// (left-to-right). Returns the scanned relation index on success so the
    /// caller can validate applicability, `None` when `k` is out of range.
    pub fn set_scan_op(&mut self, k: usize, new_op: ScanOp) -> Option<usize> {
        let JoinTree::Scan { rel, op } = self.leaf_mut(k)? else {
            unreachable!("leaf_mut only returns scans")
        };
        *op = new_op;
        Some(*rel)
    }

    /// **Coordinated rewrite** towards a pipelined index-nested-loop join:
    /// the `k`-th join node's right child must be a scan leaf; its scan
    /// operator becomes the index scan on `column` and the join operator
    /// becomes [`JoinOp::IndexNestedLoop`] in one step (the two individual
    /// swaps rarely survive a cost-based search separately). The caller is
    /// responsible for picking the join key's inner column; re-costing
    /// rejects invalid choices. Returns `false` when `k` is out of range or
    /// the right child is not a leaf.
    pub fn make_index_nl(&mut self, k: usize, column: u16) -> bool {
        let Some(JoinTree::Join { op, right, .. }) = self.join_mut(k) else {
            return false;
        };
        let JoinTree::Scan { op: scan_op, .. } = &mut **right else {
            return false;
        };
        *scan_op = ScanOp::IndexScan { column };
        *op = JoinOp::IndexNestedLoop;
        true
    }
}

impl PlanArena {
    /// Extracts the plan rooted at `root` into an owned [`JoinTree`].
    ///
    /// # Panics
    ///
    /// Panics if `root` does not belong to this arena.
    #[must_use]
    pub fn extract_tree(&self, root: PlanId) -> JoinTree {
        match self.node(root) {
            PlanNode::Scan { rel, op } => JoinTree::Scan { rel, op },
            PlanNode::Join { op, left, right } => JoinTree::Join {
                op,
                left: Box::new(self.extract_tree(left)),
                right: Box::new(self.extract_tree(right)),
            },
        }
    }

    /// Stores an owned [`JoinTree`] in the arena, returning the root id.
    pub fn insert_tree(&mut self, tree: &JoinTree) -> PlanId {
        match tree {
            JoinTree::Scan { rel, op } => self.scan(*rel, *op),
            JoinTree::Join { op, left, right } => {
                let l = self.insert_tree(left);
                let r = self.insert_tree(right);
                self.join(*op, l, r)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> JoinTree {
        // ((0 ⋈ 1) ⋈ 2)
        JoinTree::join(
            JoinOp::HashJoin { dop: 1 },
            JoinTree::join(
                JoinOp::SortMergeJoin { dop: 2 },
                JoinTree::scan(0, ScanOp::SeqScan),
                JoinTree::scan(1, ScanOp::SeqScan),
            ),
            JoinTree::scan(2, ScanOp::IndexScan { column: 0 }),
        )
    }

    #[test]
    fn roundtrip_through_arena() {
        let tree = chain3();
        let mut arena = PlanArena::new();
        let id = arena.insert_tree(&tree);
        assert_eq!(arena.extract_tree(id), tree);
        assert_eq!(arena.leaf_count(id), 3);
    }

    #[test]
    fn counts_and_mask() {
        let tree = chain3();
        assert_eq!(tree.n_leaves(), 3);
        assert_eq!(tree.n_joins(), 2);
        assert_eq!(tree.rel_mask(), 0b111);
    }

    #[test]
    fn commute_swaps_children() {
        let mut tree = chain3();
        assert!(tree.commute(0));
        let JoinTree::Join { left, right, .. } = &tree else {
            panic!()
        };
        assert!(matches!(**left, JoinTree::Scan { rel: 2, .. }));
        assert_eq!(right.n_leaves(), 2);
        assert_eq!(tree.rel_mask(), 0b111, "commutativity preserves leaves");
        assert!(!tree.commute(5), "out-of-range index is a no-op");
    }

    #[test]
    fn rotate_right_reassociates() {
        let mut tree = chain3();
        // ((0 ⋈ 1) ⋈ 2) → (0 ⋈ (1 ⋈ 2)).
        assert!(tree.rotate_right(0));
        let JoinTree::Join { left, right, .. } = &tree else {
            panic!()
        };
        assert!(matches!(**left, JoinTree::Scan { rel: 0, .. }));
        assert_eq!(right.rel_mask(), 0b110);
        assert_eq!(tree.rel_mask(), 0b111);
        // The left child is now a leaf: a further right rotation fails.
        assert!(!tree.rotate_right(0));
    }

    #[test]
    fn rotate_left_inverts_rotate_right() {
        let mut tree = chain3();
        let original = tree.clone();
        assert!(tree.rotate_right(0));
        assert!(tree.rotate_left(0));
        // Rotations also permute operator assignments; the *shape* and leaf
        // set must return, the operators may not.
        assert_eq!(tree.rel_mask(), original.rel_mask());
        assert_eq!(tree.n_joins(), original.n_joins());
        let JoinTree::Join { left, .. } = &tree else {
            panic!()
        };
        assert_eq!(left.rel_mask(), 0b011);
    }

    #[test]
    fn operator_swaps() {
        let mut tree = chain3();
        assert!(tree.set_join_op(1, JoinOp::NestedLoop));
        let JoinTree::Join { left, .. } = &tree else {
            panic!()
        };
        let JoinTree::Join { op, .. } = &**left else {
            panic!()
        };
        assert_eq!(*op, JoinOp::NestedLoop);
        assert_eq!(tree.set_scan_op(2, ScanOp::SeqScan), Some(2));
        assert_eq!(tree.set_scan_op(9, ScanOp::SeqScan), None);
        assert!(!tree.set_join_op(7, JoinOp::NestedLoop));
    }

    #[test]
    fn preorder_join_indexing_reaches_every_join() {
        // A bushy tree: (0 ⋈ 1) ⋈ (2 ⋈ 3) has joins at preorder 0, 1, 2.
        let mut tree = JoinTree::join(
            JoinOp::NestedLoop,
            JoinTree::join(
                JoinOp::HashJoin { dop: 1 },
                JoinTree::scan(0, ScanOp::SeqScan),
                JoinTree::scan(1, ScanOp::SeqScan),
            ),
            JoinTree::join(
                JoinOp::SortMergeJoin { dop: 1 },
                JoinTree::scan(2, ScanOp::SeqScan),
                JoinTree::scan(3, ScanOp::SeqScan),
            ),
        );
        for k in 0..3 {
            assert!(tree.set_join_op(k, JoinOp::NestedLoop), "join {k}");
        }
        assert!(!tree.set_join_op(3, JoinOp::NestedLoop));
    }
}
