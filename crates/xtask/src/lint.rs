//! The concurrency-hygiene lint: five text-level rules that keep the
//! lock-free spine auditable and the `moqo_sync` facade authoritative.
//!
//! | rule | what it enforces |
//! |------|------------------|
//! | `raw-atomic` | no `std::sync::atomic` outside `crates/sync` — all atomics go through the `moqo_sync` facade (audited escape hatch: `moqo_sync::raw`) |
//! | `unsafe-safety` | every `unsafe` keyword carries a `// SAFETY:` comment on the same line or within the three lines above |
//! | `relaxed-store` | every `.store(…, Ordering::Relaxed)` is allowlisted — a Relaxed store must be provably not publishing data (the allowlist entry points at the justification) |
//! | `hot-path` | `#[moqo::hot_path]` function bodies contain no locking, allocation, or panicking-`unwrap` calls |
//! | `wall-clock` | no `Instant::now()` / `SystemTime::now()` outside the injected-clock seams (`TraceClock`, retry clock, …) named in the allowlist |
//!
//! The rules are deliberately lexical, not syntactic: they run on a masked
//! copy of each file (comments and string literals blanked out) so they are
//! fast, dependency-free, and conservative. Anything they cannot prove
//! innocent is a finding; genuinely-fine sites go in `lint_allow.txt` next
//! to this crate, each entry naming the rule, a path suffix, and a
//! substring of the offending line.

/// One lint finding, pointing at a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired (the short names from the table above).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.path, self.line, self.rule, self.message, self.excerpt
        )
    }
}

/// Parsed `lint_allow.txt`: lines of `<rule> <path-suffix> <substring…>`.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

#[derive(Debug)]
struct AllowEntry {
    rule: String,
    path_suffix: String,
    substring: String,
    used: std::cell::Cell<bool>,
}

impl Allowlist {
    /// Parses the allowlist text; `#` starts a comment, blank lines skip.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let (Some(rule), Some(path), Some(sub)) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "lint_allow.txt:{}: expected `<rule> <path-suffix> <substring>`, got `{line}`",
                    i + 1
                ));
            };
            entries.push(AllowEntry {
                rule: rule.to_string(),
                path_suffix: path.to_string(),
                substring: sub.trim().to_string(),
                used: std::cell::Cell::new(false),
            });
        }
        Ok(Self { entries })
    }

    /// True if some entry waives this violation (marks the entry used).
    pub fn allows(&self, v: &Violation) -> bool {
        for e in &self.entries {
            if e.rule == v.rule
                && v.path.ends_with(&e.path_suffix)
                && v.excerpt.contains(&e.substring)
            {
                e.used.set(true);
                return true;
            }
        }
        false
    }

    /// Entries that never waived anything — stale, worth pruning.
    pub fn unused(&self) -> Vec<String> {
        self.entries
            .iter()
            .filter(|e| !e.used.get())
            .map(|e| format!("{} {} {}", e.rule, e.path_suffix, e.substring))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Source masking
// ---------------------------------------------------------------------------

/// Returns the file with comments and string/char-literal *contents* blanked
/// to spaces (newlines kept), so lexical rules never fire inside prose, and a
/// parallel per-line flag for "this line is inside a `#[cfg(test)] mod`".
pub fn mask_source(content: &str) -> (String, Vec<bool>) {
    let masked = mask_comments_and_strings(content);
    let in_test = test_spans(content, &masked);
    (masked, in_test)
}

fn mask_comments_and_strings(content: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let b: Vec<char> = content.chars().collect();
    let mut out = String::with_capacity(content.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '"' => {
                    st = St::Str;
                    out.push('"');
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string r"…" / r#"…"#.
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                        continue;
                    }
                    out.push(c);
                }
                '\'' => {
                    // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`).
                    let is_lifetime = matches!(next, Some(n) if n.is_alphabetic() || n == '_')
                        && b.get(i + 2) != Some(&'\'');
                    if is_lifetime {
                        out.push(c);
                    } else {
                        st = St::Char;
                        out.push('\'');
                    }
                }
                _ => out.push(c),
            },
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::BlockComment(depth) => {
                if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    out.push(' ');
                    i += 2;
                    continue;
                }
            }
            St::Str => match c {
                '\\' => {
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '"' => {
                    st = St::Code;
                    out.push('"');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && b.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        st = St::Code;
                        for _ in i..j {
                            out.push(' ');
                        }
                        i = j;
                        continue;
                    }
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
            St::Char => match c {
                '\\' => {
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '\'' => {
                    st = St::Code;
                    out.push('\'');
                }
                _ => out.push(' '),
            },
        }
        i += 1;
    }
    out
}

/// Marks every line inside a `#[cfg(test)] mod … { … }` span (brace-matched
/// on the masked text, so braces in strings/comments don't confuse it).
fn test_spans(raw: &str, masked: &str) -> Vec<bool> {
    let raw_lines: Vec<&str> = raw.lines().collect();
    let masked_lines: Vec<&str> = masked.lines().collect();
    let mut flags = vec![false; raw_lines.len()];
    let mut i = 0;
    while i < raw_lines.len() {
        if raw_lines[i].trim_start().starts_with("#[cfg(test)]") {
            // Find the `mod` item this attribute decorates (skipping further
            // attributes); non-mod items are left to the line rules.
            let mut j = i + 1;
            while j < raw_lines.len() && raw_lines[j].trim_start().starts_with('#') {
                j += 1;
            }
            if j < raw_lines.len() && raw_lines[j].trim_start().starts_with("mod ") {
                let mut depth = 0i32;
                let mut opened = false;
                for (k, flag) in flags.iter_mut().enumerate().skip(j) {
                    for c in masked_lines.get(k).unwrap_or(&"").chars() {
                        match c {
                            '{' => {
                                depth += 1;
                                opened = true;
                            }
                            '}' => depth -= 1,
                            _ => {}
                        }
                    }
                    *flag = true;
                    if opened && depth <= 0 {
                        i = k;
                        break;
                    }
                }
            }
        }
        i += 1;
    }
    flags
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

fn line_of(content: &str, byte_pos: usize) -> usize {
    content[..byte_pos].chars().filter(|&c| c == '\n').count() + 1
}

fn excerpt(raw: &str, line: usize) -> String {
    raw.lines().nth(line - 1).unwrap_or("").trim().to_string()
}

/// `raw-atomic`: `std::sync::atomic` may only appear inside `crates/sync`
/// (the facade's own implementation). Everyone else uses `moqo_sync` — the
/// model build swaps it for the instrumented shims, so a raw import is a
/// blind spot the checker cannot see.
pub fn rule_raw_atomic(path: &str, raw: &str, masked: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, line) in masked.lines().enumerate() {
        if line.contains("std::sync::atomic") {
            out.push(Violation {
                rule: "raw-atomic",
                path: path.to_string(),
                line: idx + 1,
                message: "raw std::sync::atomic bypasses the moqo_sync facade (use \
                          moqo_sync::atomic, or moqo_sync::raw for audited model-steering state)"
                    .to_string(),
                excerpt: excerpt(raw, idx + 1),
            });
        }
    }
    out
}

/// `unsafe-safety`: each `unsafe` keyword needs `// SAFETY:` on the same
/// line, or somewhere in the contiguous comment/attribute block immediately
/// above it (multi-line SAFETY comments are the norm for real invariants).
pub fn rule_unsafe_safety(path: &str, raw: &str, masked: &str) -> Vec<Violation> {
    let raw_lines: Vec<&str> = raw.lines().collect();
    let mut out = Vec::new();
    for (idx, line) in masked.lines().enumerate() {
        let Some(col) = find_word(line, "unsafe") else {
            continue;
        };
        if line.contains("unsafe_code") {
            continue; // `#![forbid(unsafe_code)]` and friends.
        }
        let same_line = raw_lines.get(idx).is_some_and(|l| {
            l.find("SAFETY:").is_some_and(|s| s < col) || l.contains("// SAFETY:")
        });
        let mut above = false;
        for k in (0..idx).rev() {
            let l = raw_lines.get(k).map_or("", |l| l.trim_start());
            if !(l.starts_with("//") || l.starts_with("#[") || l.starts_with("#!")) {
                break;
            }
            if l.contains("SAFETY:") {
                above = true;
                break;
            }
        }
        if !(same_line || above) {
            out.push(Violation {
                rule: "unsafe-safety",
                path: path.to_string(),
                line: idx + 1,
                message: "`unsafe` without a `// SAFETY:` comment in the comment block \
                          directly above — state the invariant that makes this sound"
                    .to_string(),
                excerpt: excerpt(raw, idx + 1),
            });
        }
    }
    out
}

/// Finds `word` at identifier boundaries; returns its byte column.
fn find_word(line: &str, word: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = line[from..].find(word) {
        let start = from + rel;
        let end = start + word.len();
        let ok_before = start == 0
            || !line[..start]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let ok_after = !line[end..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if ok_before && ok_after {
            return Some(start);
        }
        from = end;
    }
    None
}

/// `relaxed-store`: a `.store(…, Ordering::Relaxed)` publishes nothing —
/// which is exactly why each one must be allowlisted with a pointer to the
/// reasoning (or a model test) proving no consumer reads data "protected"
/// by it. Handles calls split across lines.
pub fn rule_relaxed_store(path: &str, raw: &str, masked: &str, in_test: &[bool]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = masked[from..].find(".store") {
        let start = from + rel;
        from = start + ".store".len();
        // Must be a call: next non-ws char is `(`.
        let rest = &masked[start + ".store".len()..];
        let Some(open_off) = rest.find(|c: char| !c.is_whitespace()) else {
            break;
        };
        if !rest[open_off..].starts_with('(') {
            continue;
        }
        // Walk to the matching close paren.
        let mut depth = 0i32;
        let mut end = None;
        for (off, c) in rest[open_off..].char_indices() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(open_off + off);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(end) = end else { break };
        let args = &rest[open_off..=end];
        if args.contains("Relaxed") {
            let line = line_of(masked, start);
            if in_test.get(line - 1).copied().unwrap_or(false) {
                continue;
            }
            out.push(Violation {
                rule: "relaxed-store",
                path: path.to_string(),
                line,
                message: "Relaxed store: if this publishes data it is a race; allowlist it in \
                          lint_allow.txt with the justification site"
                    .to_string(),
                excerpt: excerpt(raw, line),
            });
        }
    }
    out
}

/// Calls banned inside `#[moqo::hot_path]` bodies: locking, allocation, and
/// panicking unwraps all have unbounded or scheduler-dependent tails.
const HOT_PATH_BANNED: &[(&str, &str)] = &[
    (".unwrap()", "panicking unwrap"),
    (".expect(", "panicking expect"),
    (".lock(", "lock acquisition"),
    ("Mutex", "mutex use"),
    ("RwLock", "rwlock use"),
    ("vec!", "allocation"),
    ("Vec::new", "allocation"),
    ("Vec::with_capacity", "allocation"),
    ("Box::new", "allocation"),
    ("format!", "allocation"),
    ("String::new", "allocation"),
    ("String::from", "allocation"),
    (".to_string(", "allocation"),
    (".to_owned(", "allocation"),
    (".to_vec(", "allocation"),
];

/// `hot-path`: scans the brace-matched body of every function annotated
/// `#[moqo::hot_path]` for the banned constructs above.
pub fn rule_hot_path(path: &str, raw: &str, masked: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = masked[from..].find("#[moqo::hot_path]") {
        let attr_end = from + rel + "#[moqo::hot_path]".len();
        from = attr_end;
        // Body = first brace-matched block after the attribute.
        let Some(open_rel) = masked[attr_end..].find('{') else {
            break;
        };
        let body_start = attr_end + open_rel;
        let mut depth = 0i32;
        let mut body_end = masked.len();
        for (off, c) in masked[body_start..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        body_end = body_start + off;
                        break;
                    }
                }
                _ => {}
            }
        }
        let body = &masked[body_start..body_end];
        for (needle, why) in HOT_PATH_BANNED {
            let mut b = 0;
            while let Some(hit) = body[b..].find(needle) {
                let pos = body_start + b + hit;
                b += hit + needle.len();
                let line = line_of(masked, pos);
                out.push(Violation {
                    rule: "hot-path",
                    path: path.to_string(),
                    line,
                    message: format!(
                        "{why} (`{needle}`) inside a #[moqo::hot_path] function — hot paths \
                         must be lock-free, allocation-free and non-panicking"
                    ),
                    excerpt: excerpt(raw, line),
                });
            }
        }
    }
    out
}

/// `wall-clock`: `Instant::now` / `SystemTime::now` outside the injected
/// clock seams make latency decisions untestable and non-replayable; every
/// legitimate seam is named in the allowlist.
pub fn rule_wall_clock(path: &str, raw: &str, masked: &str, in_test: &[bool]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, line) in masked.lines().enumerate() {
        if !(line.contains("Instant::now") || line.contains("SystemTime::now")) {
            continue;
        }
        if in_test.get(idx).copied().unwrap_or(false) {
            continue;
        }
        out.push(Violation {
            rule: "wall-clock",
            path: path.to_string(),
            line: idx + 1,
            message: "wall-clock read outside a clock seam — route through the injected \
                      clock (TraceClock / retry clock) or allowlist the seam itself"
                .to_string(),
            excerpt: excerpt(raw, idx + 1),
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Per-file dispatch
// ---------------------------------------------------------------------------

/// Applies every rule that is in scope for `path` (workspace-relative, `/`
/// separators) and returns the findings, allowlist not yet applied.
pub fn lint_file(path: &str, content: &str) -> Vec<Violation> {
    let (masked, in_test) = mask_source(content);
    let mut out = Vec::new();

    let in_sync = path.starts_with("crates/sync/");
    let in_bench = path.starts_with("crates/bench/");
    let is_lib_src = path.contains("/src/") && !path.contains("/bin/");

    if !in_sync {
        out.extend(rule_raw_atomic(path, content, &masked));
    }
    out.extend(rule_unsafe_safety(path, content, &masked));
    // The sync shims mirror every modeled store into a real atomic with
    // Relaxed on purpose (the model owns the ordering); everyone else
    // justifies each Relaxed store.
    if !in_sync && is_lib_src {
        out.extend(rule_relaxed_store(path, content, &masked, &in_test));
    }
    out.extend(rule_hot_path(path, content, &masked));
    // Bench binaries measure wall time — that is their job.
    if !in_bench && is_lib_src {
        out.extend(rule_wall_clock(path, content, &masked, &in_test));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(path: &str, src: &str) -> Vec<(String, usize)> {
        lint_file(path, src)
            .into_iter()
            .map(|v| (v.rule.to_string(), v.line))
            .collect()
    }

    #[test]
    fn raw_atomic_import_is_flagged_outside_sync() {
        let src = "use std::sync::atomic::AtomicUsize;\n";
        assert_eq!(
            rules("crates/service/src/queue.rs", src),
            vec![("raw-atomic".into(), 1)]
        );
        assert_eq!(rules("crates/sync/src/real.rs", src), vec![]);
    }

    #[test]
    fn facade_import_is_clean() {
        let src = "use moqo_sync::atomic::{AtomicUsize, Ordering};\n";
        assert_eq!(rules("crates/service/src/queue.rs", src), vec![]);
    }

    #[test]
    fn unsafe_without_safety_names_file_and_line() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let v = lint_file("crates/service/src/queue.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule, v[0].line), ("unsafe-safety", 2));
    }

    #[test]
    fn unsafe_with_safety_comment_is_clean() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller upholds validity.\n    unsafe { *p }\n}\n";
        assert_eq!(rules("crates/service/src/queue.rs", src), vec![]);
        let inline = "// SAFETY: serialized by the checker.\nunsafe impl Sync for X {}\n";
        assert_eq!(rules("crates/service/src/queue.rs", inline), vec![]);
    }

    #[test]
    fn forbid_unsafe_code_attribute_is_not_an_unsafe_use() {
        assert_eq!(
            rules("crates/core/src/lib.rs", "#![forbid(unsafe_code)]\n"),
            vec![]
        );
    }

    #[test]
    fn unsafe_in_comment_or_string_is_ignored() {
        let src = "// this mentions unsafe in prose\nlet s = \"unsafe\";\n";
        assert_eq!(rules("crates/service/src/queue.rs", src), vec![]);
    }

    #[test]
    fn relaxed_store_is_flagged_even_across_lines() {
        let src =
            "fn f(a: &A) {\n    a.x.store(\n        1,\n        Ordering::Relaxed,\n    );\n}\n";
        let v = lint_file("crates/service/src/metrics.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule, v[0].line), ("relaxed-store", 2));
    }

    #[test]
    fn release_store_and_test_module_relaxed_are_clean() {
        let src = "fn f(a: &A) { a.x.store(1, Ordering::Release); }\n";
        assert_eq!(rules("crates/service/src/metrics.rs", src), vec![]);
        let test_mod =
            "#[cfg(test)]\nmod tests {\n    fn f(a: &A) { a.x.store(1, Ordering::Relaxed); }\n}\n";
        assert_eq!(rules("crates/service/src/metrics.rs", test_mod), vec![]);
    }

    #[test]
    fn hot_path_lock_and_alloc_are_flagged() {
        let src = "#[moqo::hot_path]\nfn f(&self) {\n    let g = self.m.lock().unwrap();\n    let v = vec![1];\n}\nfn cold(&self) { let _ = self.m.lock(); }\n";
        let got = rules("crates/service/src/queue.rs", src);
        // .lock( and .unwrap() on line 3, vec! on line 4 — and nothing from
        // the un-annotated `cold`.
        assert!(got.contains(&("hot-path".into(), 3)), "{got:?}");
        assert!(got.contains(&("hot-path".into(), 4)), "{got:?}");
        assert!(got.iter().all(|(_, line)| *line != 6), "{got:?}");
    }

    #[test]
    fn hot_path_clean_body_passes() {
        let src = "#[moqo::hot_path]\nfn f(&self) -> usize {\n    self.len.fetch_add(1, Ordering::AcqRel)\n}\n";
        assert_eq!(rules("crates/service/src/queue.rs", src), vec![]);
    }

    #[test]
    fn wall_clock_flagged_in_lib_src_only() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(
            rules("crates/core/src/x.rs", src),
            vec![("wall-clock".into(), 1)]
        );
        assert_eq!(rules("crates/bench/src/bin/probe.rs", src), vec![]);
        assert_eq!(rules("crates/core/tests/x.rs", src), vec![]);
    }

    #[test]
    fn wall_clock_in_cfg_test_module_is_clean() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let t = Instant::now(); }\n}\n";
        assert_eq!(rules("crates/core/src/x.rs", src), vec![]);
    }

    #[test]
    fn allowlist_waives_and_tracks_usage() {
        let allow = Allowlist::parse(
            "# seams\nwall-clock core/src/x.rs Instant::now\nrelaxed-store never/hits.rs nope\n",
        )
        .expect("parse");
        let v = lint_file(
            "crates/core/src/x.rs",
            "fn f() { let t = Instant::now(); }\n",
        );
        assert_eq!(v.len(), 1);
        assert!(allow.allows(&v[0]));
        assert_eq!(
            allow.unused(),
            vec!["relaxed-store never/hits.rs nope".to_string()]
        );
    }

    #[test]
    fn allowlist_rejects_malformed_lines() {
        assert!(Allowlist::parse("wall-clock missing-substring\n").is_err());
    }
}
