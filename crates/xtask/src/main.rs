//! Workspace automation tasks. Currently one: the concurrency-hygiene lint
//! gate (`cargo run -p xtask -- lint`), which enforces the `moqo_sync`
//! facade and the auditability rules documented in [`lint`]. Exits non-zero
//! with `file:line` findings when a rule is violated; CI runs it on every
//! push (see `.github/workflows/`).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod lint;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(args.get(1).map(String::as_str)),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [workspace-root]");
            ExitCode::from(2)
        }
    }
}

/// Workspace root: explicit argument, else two levels up from this crate's
/// manifest (crates/xtask → root), else the current directory.
fn workspace_root(explicit: Option<&str>) -> PathBuf {
    if let Some(p) = explicit {
        return PathBuf::from(p);
    }
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        if let Some(root) = Path::new(&manifest).ancestors().nth(2) {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}

fn run_lint(root_arg: Option<&str>) -> ExitCode {
    let root = workspace_root(root_arg);

    let allow_path = root.join("crates/xtask/lint_allow.txt");
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => match lint::Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(_) => lint::Allowlist::default(),
    };

    let mut files = Vec::new();
    // First-party code only: the workspace crates, the root package, and
    // their tests. `vendor/` (third-party subsets) and build output are out
    // of scope.
    collect_rs(&root.join("crates"), &root, &mut files);
    collect_rs(&root.join("src"), &root, &mut files);
    collect_rs(&root.join("tests"), &root, &mut files);
    collect_rs(&root.join("benches"), &root, &mut files);
    files.sort();

    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for rel in &files {
        let Ok(content) = std::fs::read_to_string(root.join(rel)) else {
            continue;
        };
        scanned += 1;
        for v in lint::lint_file(rel, &content) {
            if !allow.allows(&v) {
                violations.push(v);
            }
        }
    }

    for v in &violations {
        eprintln!("{v}");
    }
    for stale in allow.unused() {
        eprintln!("warning: unused allowlist entry: {stale}");
    }
    if violations.is_empty() {
        println!("lint: {scanned} files clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("lint: {} violation(s) in {scanned} files", violations.len());
        ExitCode::FAILURE
    }
}

/// Recursively gathers `.rs` files under `dir`, as `/`-separated paths
/// relative to `root`; skips VCS and build directories.
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), ".git" | "target" | "vendor") {
                continue;
            }
            collect_rs(&path, root, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}
