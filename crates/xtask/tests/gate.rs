//! End-to-end gate checks: seeded rule violations must make the lint
//! binary exit non-zero and name the offending `file:line`.

use std::path::Path;
use std::process::Command;

fn write(root: &Path, rel: &str, content: &str) {
    let p = root.join(rel);
    std::fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
    std::fs::write(p, content).expect("write fixture");
}

fn run_lint(root: &Path) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .arg(root)
        .output()
        .expect("run xtask lint");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

fn temp_root(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("moqo-lint-gate-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir temp root");
    dir
}

#[test]
fn clean_tree_passes_with_zero_exit() {
    let root = temp_root("clean");
    write(
        &root,
        "crates/app/src/lib.rs",
        "use moqo_sync::atomic::{AtomicUsize, Ordering};\n\npub fn f(n: &AtomicUsize) -> usize {\n    n.load(Ordering::Acquire)\n}\n",
    );
    let (ok, text) = run_lint(&root);
    assert!(ok, "clean tree must pass:\n{text}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn each_seeded_violation_fails_naming_file_and_line() {
    let cases: &[(&str, &str, &str, &str)] = &[
        (
            "raw-atomic",
            "crates/app/src/a.rs",
            "use std::sync::atomic::AtomicUsize;\n",
            "crates/app/src/a.rs:1",
        ),
        (
            "unsafe-safety",
            "crates/app/src/b.rs",
            "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
            "crates/app/src/b.rs:2",
        ),
        (
            "relaxed-store",
            "crates/app/src/c.rs",
            "pub fn f(x: &X) {\n    x.flag.store(true, Ordering::Relaxed);\n}\n",
            "crates/app/src/c.rs:2",
        ),
        (
            "hot-path",
            "crates/app/src/d.rs",
            "#[moqo::hot_path]\npub fn f(m: &M) {\n    let _g = m.inner.lock().unwrap();\n}\n",
            "crates/app/src/d.rs:3",
        ),
        (
            "wall-clock",
            "crates/app/src/e.rs",
            "pub fn f() -> Instant {\n    Instant::now()\n}\n",
            "crates/app/src/e.rs:2",
        ),
    ];
    for (rule, rel, content, expect) in cases {
        let root = temp_root(rule);
        write(&root, rel, content);
        let (ok, text) = run_lint(&root);
        assert!(!ok, "seeded {rule} violation must fail the lint:\n{text}");
        assert!(
            text.contains(expect),
            "{rule}: output must name {expect}:\n{text}"
        );
        assert!(
            text.contains(rule),
            "{rule}: output must name the rule:\n{text}"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn allowlist_waives_a_named_site() {
    let root = temp_root("allow");
    write(
        &root,
        "crates/app/src/e.rs",
        "pub fn f() -> Instant {\n    Instant::now()\n}\n",
    );
    write(
        &root,
        "crates/xtask/lint_allow.txt",
        "wall-clock crates/app/src/e.rs Instant::now()\n",
    );
    let (ok, text) = run_lint(&root);
    assert!(ok, "allowlisted site must pass:\n{text}");
    let _ = std::fs::remove_dir_all(&root);
}
