//! `#[moqo::hot_path]` — a zero-cost marker for serving-hot-path functions.
//!
//! The attribute expands to exactly its input: it generates no code, changes
//! no signatures, and costs nothing at runtime. Its value is as a *contract
//! marker*: `cargo run -p xtask -- lint` parses every function carrying the
//! annotation and rejects blocking or allocating constructs inside the body
//! (mutexes, `unwrap`, `vec!`/`Box::new`/`format!`, …). Annotate a function
//! when callers rely on it being lock-free and allocation-free; the lint gate
//! then keeps that promise honest across refactors.
//!
//! Consumers depend on this crate under the rename `moqo = { package =
//! "moqo_hotpath" }` so the attribute path reads as `#[moqo::hot_path]`.
#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Marks a function as serving-hot-path: lock-free and allocation-free.
///
/// Pure passthrough — the annotated item is returned verbatim. Enforcement
/// lives in `cargo run -p xtask -- lint`, which scans annotated bodies
/// textually so the check also runs without expanding macros.
#[proc_macro_attribute]
pub fn hot_path(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}
