//! Fixed-size array strategies (`prop::array`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;

/// Strategy for `[S::Value; N]` from one element strategy.
#[derive(Debug, Clone)]
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        core::array::from_fn(|_| self.element.generate(rng))
    }
}

macro_rules! uniform_fns {
    ($($name:ident => $n:literal;)*) => {$(
        /// Generates arrays of the given arity from one element strategy.
        pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
            UniformArray { element }
        }
    )*};
}

uniform_fns! {
    uniform1 => 1;
    uniform2 => 2;
    uniform3 => 3;
    uniform4 => 4;
    uniform5 => 5;
    uniform6 => 6;
    uniform7 => 7;
    uniform8 => 8;
    uniform9 => 9;
    uniform10 => 10;
}
