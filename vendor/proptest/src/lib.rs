//! Minimal, dependency-light subset of the `proptest` API.
//!
//! The workspace builds in offline environments where crates.io is
//! unreachable, so the property-testing surface its tests actually use is
//! vendored here:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * the [`strategy::Strategy`] trait with `prop_map`,
//! * range strategies (`0.0f64..1.0`, `1u16..=9`, ...), tuple strategies,
//!   [`array::uniform8`]/[`array::uniform9`], [`collection::vec`],
//! * [`arbitrary::any`] for primitives,
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike the real crate there is **no shrinking**: a failing case panics
//! immediately. Cases are generated from a deterministic per-test seed
//! (derived from the test name, overridable via `PROPTEST_SEED`), so
//! failures are reproducible; set `PROPTEST_CASES` to change the case count.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod strategy;
pub mod test_runner;

#[doc(hidden)]
pub mod __rt {
    //! Macro runtime support; not part of the public API.
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Everything the `proptest!` macro and typical property tests need.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of the real crate's `prop::` module tree.
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item expands to a `#[test]` function that runs the body over `cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            let seed = $crate::test_runner::seed_for(stringify!($name));
            let mut rng =
                <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(seed);
            // Bind each strategy once; the per-case `let` below shadows the
            // binding with the generated value for the body's scope only.
            $(let $arg = $strat;)+
            for case in 0..cases {
                let ($($arg,)+) = (
                    $($crate::strategy::Strategy::generate(&$arg, &mut rng),)+
                );
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || { $body }),
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {}/{} failed for `{}` (seed {seed}); \
                         rerun with PROPTEST_SEED={seed}",
                        case + 1,
                        cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Boolean assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
