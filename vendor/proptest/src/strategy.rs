//! The [`Strategy`] trait and the built-in strategies.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of type [`Strategy::Value`].
///
/// The real proptest couples generation with shrinking through value trees;
/// this offline subset only generates.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy_impls {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy_impls!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy_impls {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy_impls! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9);
}
