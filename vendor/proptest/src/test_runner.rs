//! Test-runner configuration for the [`proptest!`](crate::proptest) macro.

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases (the real crate's constructor).
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The configured case count, overridable via `PROPTEST_CASES`.
    #[must_use]
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(self.cases)
    }
}

/// Deterministic per-test seed: an FNV-1a hash of the test name, overridable
/// via `PROPTEST_SEED` for reproducing a reported failure.
#[must_use]
pub fn seed_for(test_name: &str) -> u64 {
    if let Some(seed) = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
    {
        return seed;
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}
