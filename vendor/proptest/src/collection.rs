//! Collection strategies (`prop::collection`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// An (inclusive) size range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length
/// lies in `size` (an exact `usize` or a range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
