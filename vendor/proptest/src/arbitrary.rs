//! The [`Arbitrary`] trait and [`any`] for primitive types.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::{Rng, RngCore};

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical strategy for `T`, e.g. `any::<bool>()`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy generating uniform primitive values.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

macro_rules! arbitrary_impls {
    ($($t:ty => |$rng:ident| $gen:expr;)*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn generate(&self, $rng: &mut StdRng) -> $t {
                $gen
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(core::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_impls! {
    bool => |rng| rng.next_u64() & 1 == 1;
    u8 => |rng| rng.next_u64() as u8;
    u16 => |rng| rng.next_u64() as u16;
    u32 => |rng| rng.next_u64() as u32;
    u64 => |rng| rng.next_u64();
    usize => |rng| rng.next_u64() as usize;
    i8 => |rng| rng.next_u64() as i8;
    i16 => |rng| rng.next_u64() as i16;
    i32 => |rng| rng.next_u64() as i32;
    i64 => |rng| rng.next_u64() as i64;
    isize => |rng| rng.next_u64() as isize;
    // Uniform over [0, 1): unbounded floats are rarely what a cost-model
    // property test wants, and the workspace only draws unit-interval floats.
    f32 => |rng| rng.gen_range(0.0f32..1.0);
    f64 => |rng| rng.gen_range(0.0f64..1.0);
}
