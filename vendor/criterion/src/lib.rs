//! Minimal, dependency-free subset of the `criterion` benchmarking API.
//!
//! The workspace builds in offline environments where crates.io is
//! unreachable, so the benchmark surface its benches use is vendored here:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], [`criterion_group!`] and [`criterion_main!`].
//!
//! Measurement is deliberately simple: after a short warm-up, each benchmark
//! runs `sample_size` samples (each sized to fill a slice of the group's
//! `measurement_time`) and reports the mean, minimum and maximum time per
//! iteration. There is no statistical analysis, HTML report, or baseline
//! comparison; swap in the real crate when registry access is available.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a value or the computation behind it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver; one per benchmark binary.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
            default_measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Accepts (and ignores) command-line arguments; the real crate parses
    /// filters and output options here. Present so `criterion_group!`
    /// expansions stay source-compatible.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: None,
            measurement_time: None,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        let measurement_time = self.default_measurement_time;
        run_benchmark(&id.into(), sample_size, measurement_time, f);
        self
    }
}

/// A named group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(
            &full,
            self.sample_size.unwrap_or(20),
            self.measurement_time.unwrap_or(Duration::from_secs(1)),
            |b| f(b),
        );
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints a trailing newline; the real crate emits its
    /// summary here).
    pub fn finish(self) {
        println!();
    }
}

/// A benchmark identifier: function name plus parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identifier for `function` at the given parameter point.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Identifier carrying only a parameter (grouped under the group name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the timed routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, measurement_time: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up and calibration: find an iteration count that makes one sample
    // take roughly measurement_time / sample_size.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let slice = measurement_time.max(Duration::from_millis(10)) / sample_size as u32;
    let iters = (slice.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / iters as u32;
        total += per;
        min = min.min(per);
        max = max.max(per);
    }
    let mean = total / sample_size as u32;
    println!(
        "  {name:<48} mean {:>12.1?}  min {:>12.1?}  max {:>12.1?}  ({sample_size} samples × {iters} iters)",
        mean, min, max
    );
}

/// Declares a benchmark group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
