//! Minimal, dependency-free subset of the `rand` 0.8 API.
//!
//! The workspace builds in offline environments where crates.io is
//! unreachable, so the small surface it actually uses is vendored here:
//!
//! * [`rngs::StdRng`] — a seedable, reproducible generator (xoshiro256**),
//! * [`Rng::gen_range`] over half-open and inclusive numeric ranges,
//! * [`SeedableRng::seed_from_u64`],
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The streams differ from the real `rand` crate (which uses ChaCha12 for
//! `StdRng`), but every consumer in this workspace only relies on
//! *determinism per seed*, not on a specific stream.

#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// A random number generator: the low-level word source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-level random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// A generator that can be instantiated from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that can produce a uniform sample; the glue behind
/// [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// `next_u64` mapped to the unit interval `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                // Rounding (f64→f32 narrowing, or `start + span * u` for
                // 1-ulp spans) can land exactly on the excluded upper bound;
                // resample in that (≈2⁻²⁵ for f32) case.
                loop {
                    let u = unit_f64(rng) as $t;
                    let x = self.start + (self.end - self.start) * u;
                    if x < self.end {
                        return x;
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                // Map 53 random bits onto [0, 1] inclusively.
                let max = ((1u64 << 53) - 1) as f64;
                let u = ((rng.next_u64() >> 11) as f64 / max) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}
float_range_impls!(f32, f64);

/// Uniform integer in `[0, span)` without modulo bias (Lemire reduction).
#[inline]
pub(crate) fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! int_range_impls {
    ($(($t:ty, $u:ty)),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                // Cast the span through the unsigned same-width type: for
                // signed $t, `end - start` can exceed $t::MAX, and a direct
                // `as u64` would sign-extend the wrapped value.
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = hi.wrapping_sub(lo) as $u as u64;
                if span >= <$u>::MAX as u64 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
int_range_impls!(
    (u8, u8),
    (u16, u16),
    (u32, u32),
    (u64, u64),
    (usize, usize),
    (i8, u8),
    (i16, u16),
    (i32, u32),
    (i64, u64),
    (isize, usize)
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&x));
            let y: f64 = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v: usize = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v: u16 = rng.gen_range(1u16..=3);
            assert!((1..=3).contains(&v));
        }
    }

    #[test]
    fn signed_narrow_ranges_stay_in_bounds() {
        // Regression: spans exceeding the signed type's max used to
        // sign-extend and produce out-of-range values.
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10_000 {
            let v: i8 = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&v), "out of range: {v}");
            let w: i32 = rng.gen_range(-2_000_000_000i32..=2_000_000_000);
            assert!((-2_000_000_000..=2_000_000_000).contains(&w));
        }
        let mut hit_low = false;
        let mut hit_high = false;
        for _ in 0..10_000 {
            let v: i8 = rng.gen_range(i8::MIN..=i8::MAX);
            hit_low |= v < -64;
            hit_high |= v > 64;
        }
        assert!(hit_low && hit_high, "full-range sampling looks non-uniform");
    }

    #[test]
    fn f32_half_open_range_excludes_upper_bound() {
        // Regression: f64→f32 narrowing used to round onto the excluded
        // upper bound roughly every 2^25 draws.
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200_000 {
            let x: f32 = rng.gen_range(0.0f32..1.0);
            assert!(x < 1.0, "upper bound returned: {x}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }
}
