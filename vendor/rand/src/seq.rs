//! Sequence-related random operations.

use crate::RngCore;

/// Extension trait providing random slice operations.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R>(&mut self, rng: &mut R)
    where
        R: RngCore + ?Sized;

    /// Returns a uniformly chosen element, or `None` if the slice is empty.
    fn choose<R>(&self, rng: &mut R) -> Option<&Self::Item>
    where
        R: RngCore + ?Sized;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R>(&mut self, rng: &mut R)
    where
        R: RngCore + ?Sized,
    {
        for i in (1..self.len()).rev() {
            let j = crate::bounded_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R>(&self, rng: &mut R) -> Option<&T>
    where
        R: RngCore + ?Sized,
    {
        if self.is_empty() {
            None
        } else {
            Some(&self[crate::bounded_u64(rng, self.len() as u64) as usize])
        }
    }
}
