//! # moqo — Approximation Schemes for Many-Objective Query Optimization
//!
//! A faithful, self-contained reproduction of *Trummer & Koch,
//! "Approximation Schemes for Many-Objective Query Optimization", SIGMOD
//! 2014* (arXiv:1404.0046): multi-objective query optimization (MOQO)
//! algorithms with formal near-optimality guarantees, a nine-objective
//! Postgres-style cost model, and the TPC-H workload of the paper's
//! evaluation.
//!
//! ## The three algorithms
//!
//! | | problem | guarantee | paper |
//! |---|---------|-----------|-------|
//! | EXA | weighted + bounded MOQO | exact | §5 (Ganguly et al.) |
//! | RTA | weighted MOQO | `α_U`-approximate | §6 |
//! | IRA | bounded-weighted MOQO | `α_U`-approximate | §7 |
//! | RMQ | any MOQO, large join graphs | anytime, no formal bound | follow-up (arXiv:1603.00400) |
//!
//! ## Quickstart
//!
//! ```
//! use moqo::prelude::*;
//!
//! // TPC-H statistics at a small scale factor and query Q3.
//! let catalog = moqo::tpch::catalog(0.01);
//! let query = moqo::tpch::query(&catalog, 3);
//!
//! // Minimize a weighted sum of execution time and buffer footprint,
//! // requiring all result tuples (no sampling).
//! let preference = Preference::over(ObjectiveSet::empty())
//!     .weight(Objective::TotalTime, 1.0)
//!     .weight(Objective::BufferFootprint, 1e-6)
//!     .bound(Objective::TupleLoss, 0.0);
//!
//! // Near-optimal plan within factor 1.5, in milliseconds.
//! let optimizer = Optimizer::new(&catalog);
//! let result = optimizer.optimize(&query, &preference, Algorithm::Ira { alpha: 1.5 });
//! assert!(result.respects_bounds);
//! println!("weighted cost: {:.1}", result.weighted_cost);
//! ```
//!
//! ## Crate map
//!
//! * [`cost`] — objectives, cost vectors, dominance relations, preferences.
//! * [`catalog`] — table statistics, join graphs, cardinality estimation.
//! * [`plan`] — operators, plan arena, plan rendering.
//! * [`costmodel`] — the nine-objective recursive cost formulas.
//! * [`core`] — EXA/RTA/IRA/Selinger, Pareto pruning, the optimizer facade.
//! * [`service`] — the concurrent optimization service: bounded work queue,
//!   worker pool, deadline-aware admission, α-aware plan cache, metrics.
//! * [`tpch`] — the 22 TPC-H queries and the §8 test-case generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use moqo_core as core;
pub use moqo_cost as cost;
pub use moqo_costmodel as costmodel;
pub use moqo_plan as plan;
pub use moqo_service as service;

/// Catalog, statistics and join-graph query model.
pub mod catalog {
    pub use moqo_catalog::*;
}

/// TPC-H workload: catalog builder, the 22 queries, test-case generation.
pub mod tpch {
    pub use moqo_tpch::catalog;
    pub use moqo_tpch::queries::{
        all_queries, large_join_graph, large_join_graph_with, large_query, large_query_with, query,
        Topology, FIGURE_ORDER,
    };
    pub use moqo_tpch::testgen::{
        bounded_test_case, min_cost_vector, weighted_test_case, TestCase,
    };
}

/// Everything needed for typical use.
pub mod prelude {
    pub use moqo_catalog::{Catalog, JoinGraph, JoinGraphBuilder, Query};
    pub use moqo_core::{
        exa, ira, rmq, rta, select_best, Algorithm, ConvergencePoint, Deadline, OptimizationResult,
        Optimizer, RmqConfig, RmqResult,
    };
    pub use moqo_cost::dominance::{approx_dominates, dominates, strictly_dominates};
    pub use moqo_cost::{Bounds, CostVector, Objective, ObjectiveSet, Preference, Weights};
    pub use moqo_costmodel::{CostModel, CostModelParams};
    pub use moqo_plan::{render_plan, JoinOp, JoinTree, PlanArena, PlanId, ScanOp, SortOrder};
    pub use moqo_service::{
        OptimizationRequest, OptimizationResponse, OptimizationService, ServiceError,
    };
}
